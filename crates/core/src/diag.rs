//! Diagnostics: source spans, severities, and a plain-text renderer.
//!
//! The static analyzer (`dood-rules`), the parsers, and the `doodlint` CLI
//! all report problems through [`Diagnostic`] so that parse errors and
//! semantic diagnostics render uniformly with `file:line:col` anchors, the
//! offending source line, and a caret underline.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Span {
    /// Start byte offset.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end: end.max(start) }
    }

    /// A zero-width span at `at`.
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// The span translated right by `by` bytes (used when embedding a rule
    /// body inside a larger program file).
    pub fn shifted(self, by: usize) -> Self {
        Span { start: self.start + by, end: self.end + by }
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is rejected.
    Error,
    /// Suspicious but accepted (fatal under `--strict`).
    Warning,
    /// Supplementary information attached to another diagnostic.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// One analyzer or parser finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity level.
    pub severity: Severity,
    /// Stable code (`E001`…, `W101`…, `P001` for parse errors).
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Where in the source, when known.
    pub span: Option<Span>,
    /// 1-based line of `span.start` (0 = unknown); precomputed so the
    /// diagnostic stays renderable without the source at hand.
    pub line: u32,
    /// 1-based column of `span.start` (0 = unknown).
    pub col: u32,
    /// The enclosing rule or query name, when any.
    pub owner: Option<String>,
    /// Free-form follow-up notes (cycle paths, hints).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span: None,
            line: 0,
            col: 0,
            owner: None,
            notes: Vec::new(),
        }
    }

    /// A new warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::error(code, message) }
    }

    /// Attach a span, computing line/column from `src`.
    pub fn with_span(mut self, span: Span, src: &str) -> Self {
        let (line, col) = line_col(src, span.start);
        self.span = Some(span);
        self.line = line;
        self.col = col;
        self
    }

    /// Attach the owning rule/query name.
    pub fn with_owner(mut self, owner: impl Into<String>) -> Self {
        self.owner = Some(owner.into());
        self
    }

    /// Attach a follow-up note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// One-line rendering: `file:line:col: severity[code]: message`.
    /// `file` may be empty (omitted along with an unknown position).
    pub fn headline(&self, file: &str) -> String {
        let mut out = String::new();
        if !file.is_empty() {
            out.push_str(file);
            out.push(':');
        }
        if self.line > 0 {
            out.push_str(&format!("{}:{}: ", self.line, self.col));
        } else if !file.is_empty() {
            out.push(' ');
        }
        out.push_str(&format!("{}[{}]: {}", self.severity, self.code, self.message));
        if let Some(owner) = &self.owner {
            out.push_str(&format!(" (in `{owner}`)"));
        }
        out
    }

    /// One JSON object on a single line (the `doodlint --json` format):
    /// `file`, `severity`, `code`, `message`, `line`/`col` (0 = unknown),
    /// `span` (`{start, end}` or `null`), `owner` (or `null`), `notes`.
    pub fn to_json_line(&self, file: &str) -> String {
        use crate::obs::json_escape;
        let mut out = format!(
            "{{\"file\":\"{}\",\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\",\"line\":{},\"col\":{}",
            json_escape(file),
            self.severity,
            json_escape(self.code),
            json_escape(&self.message),
            self.line,
            self.col,
        );
        match self.span {
            Some(s) => {
                out.push_str(&format!(",\"span\":{{\"start\":{},\"end\":{}}}", s.start, s.end))
            }
            None => out.push_str(",\"span\":null"),
        }
        match &self.owner {
            Some(o) => out.push_str(&format!(",\"owner\":\"{}\"", json_escape(o))),
            None => out.push_str(",\"owner\":null"),
        }
        out.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(n)));
        }
        out.push_str("]}");
        out
    }

    /// Full rendering: headline, the source line with a caret underline
    /// (when the span is known), and any notes.
    pub fn render(&self, file: &str, src: &str) -> String {
        let mut out = self.headline(file);
        if let Some(span) = self.span {
            if self.line > 0 {
                if let Some(text) = src.lines().nth(self.line as usize - 1) {
                    let gutter = format!("{:>5} | ", self.line);
                    out.push('\n');
                    out.push_str(&gutter);
                    out.push_str(text);
                    out.push('\n');
                    out.push_str(&" ".repeat(gutter.len() - 2));
                    out.push_str("| ");
                    let col = self.col as usize - 1;
                    // Underline within the line; multi-line spans underline
                    // to the end of the first line.
                    let width =
                        (span.end - span.start).max(1).min(text.chars().count().saturating_sub(col).max(1));
                    out.push_str(&" ".repeat(col));
                    out.push_str(&"^".repeat(width));
                }
            }
        }
        for n in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(n);
        }
        out
    }
}

/// 1-based `(line, column)` of byte offset `at` in `src`. Columns count
/// characters, not bytes. Offsets past the end land on the last position.
pub fn line_col(src: &str, at: usize) -> (u32, u32) {
    let at = at.min(src.len());
    let mut line = 1u32;
    let mut line_start = 0usize;
    for (i, b) in src.bytes().enumerate() {
        if i >= at {
            break;
        }
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    let col = src[line_start..at].chars().count() as u32 + 1;
    (line, col)
}

/// Whether any diagnostic is error-level.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Counts of `(errors, warnings)`.
pub fn counts(diags: &[Diagnostic]) -> (usize, usize) {
    let e = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let w = diags.iter().filter(|d| d.severity == Severity::Warning).count();
    (e, w)
}

/// Sort diagnostics for presentation: by source position, then severity,
/// then code. Position-less diagnostics sort last.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        let ka = (a.span.map_or(usize::MAX, |s| s.start), a.severity, a.code);
        let kb = (b.span.map_or(usize::MAX, |s| s.start), b.severity, b.code);
        ka.cmp(&kb)
    });
}

/// Render a batch of diagnostics against one source file, sorted, one block
/// per diagnostic, separated by blank lines.
pub fn render_all(diags: &[Diagnostic], file: &str, src: &str) -> String {
    let mut sorted: Vec<Diagnostic> = diags.to_vec();
    sort(&mut sorted);
    sorted.iter().map(|d| d.render(file, src)).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basics() {
        let src = "ab\ncde\nf";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 5), (2, 3));
        assert_eq!(line_col(src, 7), (3, 1));
        assert_eq!(line_col(src, 99), (3, 2)); // clamped past the end
    }

    #[test]
    fn headline_and_render() {
        let src = "if context Teachr * Section\nthen X (Teachr)";
        let d = Diagnostic::error("E001", "unknown class `Teachr`")
            .with_span(Span::new(11, 17), src)
            .with_owner("R1");
        assert_eq!(d.line, 1);
        assert_eq!(d.col, 12);
        let h = d.headline("a.dood");
        assert_eq!(h, "a.dood:1:12: error[E001]: unknown class `Teachr` (in `R1`)");
        let r = d.render("a.dood", src);
        assert!(r.contains("if context Teachr * Section"), "{r}");
        assert!(r.contains("^^^^^^"), "{r}");
    }

    #[test]
    fn sorting_and_counts() {
        let src = "abc";
        let mut ds = vec![
            Diagnostic::warning("W102", "later").with_span(Span::new(2, 3), src),
            Diagnostic::error("E001", "earlier").with_span(Span::new(0, 1), src),
            Diagnostic::error("E014", "no span"),
        ];
        sort(&mut ds);
        assert_eq!(ds[0].code, "E001");
        assert_eq!(ds[1].code, "W102");
        assert_eq!(ds[2].code, "E014");
        assert!(has_errors(&ds));
        assert_eq!(counts(&ds), (2, 1));
    }

    #[test]
    fn json_line_rendering() {
        let src = "if context X\nthen Y";
        let d = Diagnostic::error("E001", "unknown class \"X\"")
            .with_span(Span::new(11, 12), src)
            .with_owner("R1")
            .with_note("did you mean `Xs`?");
        let j = d.to_json_line("a.dood");
        assert_eq!(
            j,
            "{\"file\":\"a.dood\",\"severity\":\"error\",\"code\":\"E001\",\
             \"message\":\"unknown class \\\"X\\\"\",\"line\":1,\"col\":12,\
             \"span\":{\"start\":11,\"end\":12},\"owner\":\"R1\",\
             \"notes\":[\"did you mean `Xs`?\"]}"
        );
        let bare = Diagnostic::warning("W101", "w").to_json_line("");
        assert!(bare.contains("\"span\":null"), "{bare}");
        assert!(bare.contains("\"owner\":null"), "{bare}");
        assert!(bare.contains("\"notes\":[]"), "{bare}");
    }

    #[test]
    fn span_shift() {
        assert_eq!(Span::new(2, 5).shifted(10), Span::new(12, 15));
        assert_eq!(Span::point(3).shifted(1), Span::new(4, 4));
    }
}
