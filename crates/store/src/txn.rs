//! Lightweight transactions: batch mutations with rollback.
//!
//! The paper assumes an underlying OO DBMS; rules triggered by updates
//! (forward chaining, §6) should observe either all or none of a batch.
//! This is an undo-log transaction over [`Database`] — object deletion is
//! deliberately not exposed (its cascades are not cheaply undoable).

use crate::database::Database;
use dood_core::error::StoreError;
use dood_core::ids::{AssocId, ClassId, Oid};
use dood_core::value::Value;

#[derive(Debug)]
enum UndoOp {
    DeleteObject(Oid),
    Dissociate { assoc: AssocId, from: Oid, to: Oid },
    Associate { assoc: AssocId, from: Oid, to: Oid },
    RestoreAttr { oid: Oid, attr: AssocId, old: Value },
}

/// An open transaction. Obtain with [`Transaction::begin`]; finish with
/// [`Transaction::commit`] or [`Transaction::rollback`]. Dropping an
/// uncommitted transaction rolls it back.
#[derive(Debug)]
pub struct Transaction<'a> {
    db: &'a mut Database,
    undo: Vec<UndoOp>,
    done: bool,
}

impl<'a> Transaction<'a> {
    /// Begin a transaction over the database.
    pub fn begin(db: &'a mut Database) -> Self {
        Transaction { db, undo: Vec::new(), done: false }
    }

    /// Read access to the underlying database.
    pub fn db(&self) -> &Database {
        self.db
    }

    /// Create an object (undone by deletion).
    pub fn new_object(&mut self, class: ClassId) -> Result<Oid, StoreError> {
        let oid = self.db.new_object(class)?;
        self.undo.push(UndoOp::DeleteObject(oid));
        Ok(oid)
    }

    /// Create a subclass perspective (undone by deleting the perspective).
    pub fn specialize(&mut self, parent: Oid, subclass: ClassId) -> Result<Oid, StoreError> {
        let oid = self.db.specialize(parent, subclass)?;
        self.undo.push(UndoOp::DeleteObject(oid));
        Ok(oid)
    }

    /// Associate two objects.
    pub fn associate(&mut self, assoc: AssocId, from: Oid, to: Oid) -> Result<(), StoreError> {
        let existed = self.db.linked(assoc, from, to);
        self.db.associate(assoc, from, to)?;
        if !existed {
            self.undo.push(UndoOp::Dissociate { assoc, from, to });
        }
        Ok(())
    }

    /// Dissociate two objects.
    pub fn dissociate(&mut self, assoc: AssocId, from: Oid, to: Oid) -> Result<(), StoreError> {
        let existed = self.db.linked(assoc, from, to);
        self.db.dissociate(assoc, from, to)?;
        if existed {
            self.undo.push(UndoOp::Associate { assoc, from, to });
        }
        Ok(())
    }

    /// Set an attribute by name.
    pub fn set_attr(&mut self, oid: Oid, name: &str, value: Value) -> Result<(), StoreError> {
        let old = self.db.attr(oid, name)?;
        // Resolve where the write actually lands so the undo targets the
        // same perspective object.
        let class = self.db.class_of(oid)?;
        let resolved = self
            .db
            .schema()
            .resolve_attr(class, name)
            .map_err(|_| StoreError::NoSuchAttribute { class, attr: name.to_string() })?;
        let target = self
            .db
            .climb(oid, &resolved.up_chain)
            .ok_or(StoreError::NoSuchObject(oid))?;
        self.db.set_attr(oid, name, value)?;
        self.undo.push(UndoOp::RestoreAttr { oid: target, attr: resolved.attr, old });
        Ok(())
    }

    /// Commit: keep all mutations.
    pub fn commit(mut self) {
        self.done = true;
        self.undo.clear();
    }

    /// Roll back: undo all mutations in reverse order.
    pub fn rollback(mut self) {
        self.apply_undo();
    }

    fn apply_undo(&mut self) {
        self.done = true;
        while let Some(op) = self.undo.pop() {
            let r = match op {
                UndoOp::DeleteObject(oid) => self.db.delete_object(oid),
                UndoOp::Dissociate { assoc, from, to } => self.db.dissociate(assoc, from, to),
                UndoOp::Associate { assoc, from, to } => self.db.associate(assoc, from, to),
                UndoOp::RestoreAttr { oid, attr, old } => self.db.set_attr_direct(oid, attr, old),
            };
            debug_assert!(r.is_ok(), "undo must not fail");
        }
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.apply_undo();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::DType;

    fn db() -> Database {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.d_class("V", DType::Int);
        b.attr("A", "V");
        b.aggregate("A", "B");
        Database::new(b.build().unwrap())
    }

    #[test]
    fn commit_keeps_changes() {
        let mut d = db();
        let a_class = d.schema().class_by_name("A").unwrap();
        let mut t = Transaction::begin(&mut d);
        let a = t.new_object(a_class).unwrap();
        t.set_attr(a, "V", Value::Int(1)).unwrap();
        t.commit();
        assert!(d.is_live(a));
        assert_eq!(d.attr(a, "V").unwrap(), Value::Int(1));
    }

    #[test]
    fn rollback_undoes_everything() {
        let mut d = db();
        let a_class = d.schema().class_by_name("A").unwrap();
        let b_class = d.schema().class_by_name("B").unwrap();
        let assoc = d.schema().assocs().iter().find(|x| x.name == "B").unwrap().id;

        let pre_a = d.new_object(a_class).unwrap();
        d.set_attr(pre_a, "V", Value::Int(10)).unwrap();

        let mut t = Transaction::begin(&mut d);
        let a = t.new_object(a_class).unwrap();
        let b = t.new_object(b_class).unwrap();
        t.associate(assoc, a, b).unwrap();
        t.set_attr(pre_a, "V", Value::Int(99)).unwrap();
        t.rollback();

        assert!(!d.is_live(a));
        assert!(!d.is_live(b));
        assert_eq!(d.attr(pre_a, "V").unwrap(), Value::Int(10));
        assert_eq!(d.link_count(assoc), 0);
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let mut d = db();
        let a_class = d.schema().class_by_name("A").unwrap();
        let a;
        {
            let mut t = Transaction::begin(&mut d);
            a = t.new_object(a_class).unwrap();
            // dropped here
        }
        assert!(!d.is_live(a));
    }

    #[test]
    fn rollback_restores_removed_link() {
        let mut d = db();
        let a_class = d.schema().class_by_name("A").unwrap();
        let b_class = d.schema().class_by_name("B").unwrap();
        let assoc = d.schema().assocs().iter().find(|x| x.name == "B").unwrap().id;
        let a = d.new_object(a_class).unwrap();
        let b = d.new_object(b_class).unwrap();
        d.associate(assoc, a, b).unwrap();
        let mut t = Transaction::begin(&mut d);
        t.dissociate(assoc, a, b).unwrap();
        assert!(!t.db().linked(assoc, a, b));
        t.rollback();
        assert!(d.linked(assoc, a, b));
    }
}
