//! E17 — compiled join pipelines (DESIGN.md §10): the fused plan
//! interpreter against the legacy AST-walking evaluator on the E1
//! (association chain), E6 (braced retention) and E7 (four-way aggregate
//! feed) context shapes, plus the cost-based planner against the two
//! forced join orders it replaced on the skewed E9 chain.
//!
//! Afterwards reads back this run's medians and prints two verdicts:
//!
//! * **compile speedup** — compiled must be ≥ 1.3× faster than the
//!   interpreter on at least 2 of the 3 shapes;
//! * **plan quality** — the cost-based order may cost at most 1.2× the
//!   best forced order (min-extent / leftmost).
//!
//! Prints `PASS`/`WARN`; exits nonzero on a miss only under
//! `DOOD_BENCH_STRICT=1` (shared hosts are noisy, so the hard gate is
//! opt-in for `scripts/ci.sh` and `scripts/bench_snapshot.sh`).

use dood_bench::harness::{fmt_ns, Harness, Record};
use dood_core::subdb::SubdbRegistry;
use dood_oql::parser::Parser;
use dood_oql::resolve::resolve_context;
use dood_oql::{Evaluator, ExecMode, PlannerMode};
use dood_store::Database;
use dood_workload::university;
use std::path::PathBuf;

/// Population scale for the context-shape comparison.
const FACTOR: usize = 8;

/// Required compiled-over-interpreted speedup, on ≥ 2 of the 3 shapes.
const SPEEDUP_BAR: f64 = 1.3;

/// Allowed cost-based overhead over the best forced join order.
const PLAN_BUDGET: f64 = 1.2;

/// The three measured context shapes (E1, E6, E7).
const SHAPES: &[(&str, &str)] = &[
    ("e1", "Teacher * Section * Course"),
    ("e6", "{Teacher * Section} * Course"),
    ("e7", "Department * Course * Section * Student"),
];

/// The E9 skewed chain: a selective predicate at the far end rewards
/// anchoring away from the populous leftmost class.
const SKEWED: &str = "Student * Section * Course * Department [name = 'CIS']";

/// A ready-to-run evaluator: compile once, execute many times — the
/// steady-state shape of the engine, where `RuleCache` keeps the compiled
/// plan across delta evaluations.
fn evaluator<'a>(
    db: &'a Database,
    resolved: &'a dood_oql::resolve::ResolvedContext,
    reg: &'a SubdbRegistry,
    exec: ExecMode,
    mode: PlannerMode,
) -> Evaluator<'a> {
    Evaluator::new(resolved, db, reg).unwrap().with_planner(mode).with_exec(exec)
}

fn main() {
    let mut h = Harness::new("e17_compile");
    let db = university::populate(university::Size::scaled(FACTOR), 42);
    let reg = SubdbRegistry::new();

    for (name, query) in SHAPES {
        let expr = Parser::parse_context_expr(query).unwrap();
        let resolved = resolve_context(&expr, db.schema(), &reg).unwrap();
        let compiled = evaluator(&db, &resolved, &reg, ExecMode::Compiled, PlannerMode::CostBased);
        let interp = evaluator(&db, &resolved, &reg, ExecMode::Interp, PlannerMode::CostBased);
        assert_eq!(
            compiled.eval("x").to_vec(),
            interp.eval("x").to_vec(),
            "{name}: compiled and interpreted must agree"
        );
        h.bench(&format!("compiled/{name}"), || compiled.eval("x").len());
        h.bench(&format!("interp/{name}"), || interp.eval("x").len());
    }

    let expr = Parser::parse_context_expr(SKEWED).unwrap();
    let resolved = resolve_context(&expr, db.schema(), &reg).unwrap();
    for (name, mode) in [
        ("cost", PlannerMode::CostBased),
        ("minextent", PlannerMode::MinExtent),
        ("leftmost", PlannerMode::Leftmost),
    ] {
        let ev = evaluator(&db, &resolved, &reg, ExecMode::Compiled, mode);
        h.bench(&format!("planner/{name}"), || ev.eval("x").len());
    }

    h.finish();
    check_verdicts();
}

/// Read back this run's records and print the speedup and plan-quality
/// verdicts.
fn check_verdicts() {
    if std::env::var("DOOD_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        println!("# e17 verdicts skipped (smoke mode: timings are not meaningful)");
        return;
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_default();
    let own_path = match std::env::var_os("DOOD_BENCH_JSON") {
        Some(dir) => PathBuf::from(dir).join("BENCH_e17_compile.json"),
        None => workspace.join("target/bench-json/BENCH_e17_compile.json"),
    };
    let med = |bench: &str| median_of(&own_path, "e17_compile", bench);
    let mut strict_fail = false;

    // Compile speedup: ≥ SPEEDUP_BAR on ≥ 2 of the 3 shapes.
    let mut fast = 0usize;
    let mut seen = 0usize;
    for (name, _) in SHAPES {
        let (Some(c), Some(i)) = (med(&format!("compiled/{name}")), med(&format!("interp/{name}")))
        else {
            continue;
        };
        seen += 1;
        let speedup = i / c;
        println!(
            "# e17 {name}: compiled {} vs interp {} ({speedup:.2}x)",
            fmt_ns(c),
            fmt_ns(i)
        );
        if speedup >= SPEEDUP_BAR {
            fast += 1;
        }
    }
    if seen == SHAPES.len() {
        let verdict = if fast >= 2 { "PASS" } else { "WARN" };
        println!(
            "# e17 compile speedup: {verdict} — {fast}/{seen} shapes ≥ {SPEEDUP_BAR}x"
        );
        strict_fail |= verdict == "WARN";
    } else {
        println!("# e17 compile speedup check skipped (missing records in {})", own_path.display());
    }

    // Plan quality: cost-based within PLAN_BUDGET of the best forced order.
    match (med("planner/cost"), med("planner/minextent"), med("planner/leftmost")) {
        (Some(cost), Some(minext), Some(left)) => {
            let best = minext.min(left);
            let ratio = cost / best;
            let verdict = if ratio <= PLAN_BUDGET { "PASS" } else { "WARN" };
            println!(
                "# e17 plan quality: {verdict} — cost-based {} vs best forced {} ({ratio:.2}x, budget {PLAN_BUDGET:.1}x)",
                fmt_ns(cost),
                fmt_ns(best)
            );
            strict_fail |= verdict == "WARN";
        }
        _ => println!("# e17 plan quality check skipped (missing planner records in {})", own_path.display()),
    }

    if strict_fail && std::env::var("DOOD_BENCH_STRICT").is_ok_and(|v| v == "1") {
        eprintln!("# e17: verdict missed under DOOD_BENCH_STRICT=1");
        std::process::exit(1);
    }
}

/// The first `group`/`bench` record's median in a JSON-lines bench file.
fn median_of(path: &PathBuf, group: &str, bench: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .filter_map(Record::from_json_line)
        .find(|r| r.group == group && r.bench == bench)
        .map(|r| r.median_ns)
}
