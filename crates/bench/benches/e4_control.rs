//! E4 — result-oriented vs rule-oriented control: cost of one
//! update+propagate round (consistency outcomes are reported by the
//! `report` binary; this measures the work).

use criterion::{criterion_group, criterion_main, Criterion};
use dood_bench::{pipeline_engine, pipeline_update, rule_oriented_round};
use dood_rules::{ControlMode, EvalPolicy};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_control");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    g.bench_function("result_oriented_all_pre", |b| {
        b.iter_batched(
            || {
                let mut e = pipeline_engine(100, 4);
                e.set_mode(ControlMode::ResultOriented);
                for s in ["REa", "REb", "REc", "REd"] {
                    e.set_policy(s, EvalPolicy::PreEvaluated);
                }
                e.query("context REd:Department").unwrap();
                e
            },
            |mut e| {
                pipeline_update(&mut e, 1);
                black_box(e.propagate().unwrap().len())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("result_oriented_all_post", |b| {
        b.iter_batched(
            || {
                let mut e = pipeline_engine(100, 4);
                e.query("context REd:Department").unwrap();
                e
            },
            |mut e| {
                pipeline_update(&mut e, 1);
                e.propagate().unwrap();
                black_box(e.query("context REd:Department").unwrap().table.len())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("rule_oriented_mixed", |b| {
        b.iter_batched(
            || {
                let mut e = pipeline_engine(100, 4);
                e.query("context REd:Department").unwrap();
                e
            },
            |mut e| black_box(rule_oriented_round(&mut e, 1)),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
