//! Persistence: dump a populated university database to the line-oriented
//! `dooddump` format, reload it, and show that rules and queries behave
//! identically over the reloaded store.
//!
//! ```sh
//! cargo run --example persistence
//! ```

use dood::rules::RuleEngine;
use dood::store::{dump, load, load_full, save_full};
use dood::workload::university::{self, Size};

fn main() {
    let db = university::populate(Size::small(), 42);
    println!(
        "populated {} objects; dumping to the dooddump v1 text format…",
        db.object_count()
    );

    let text = dump(&db);
    let lines = text.lines().count();
    println!("dump: {lines} lines, {} bytes", text.len());
    println!("--- first 8 lines ---");
    for l in text.lines().take(8) {
        println!("{l}");
    }
    println!("----------------------\n");

    // Reload into a fresh store over the same schema.
    let loaded = load(university::schema(), &text).expect("well-formed dump");
    assert_eq!(dump(&loaded), text, "dumps are deterministic and stable");
    println!("reloaded {} objects; dumps are byte-identical.", loaded.object_count());

    // The reloaded store supports the full deductive stack.
    let run = |db: dood::store::Database| {
        let mut engine = RuleEngine::new(db);
        engine
            .add_rule(
                "R1",
                "if context Teacher * Section * Course then Teacher_course (Teacher, Course)",
            )
            .unwrap();
        engine
            .query(
                "context Teacher_course:Teacher * Teacher_course:Course \
                 select Teacher[name], Course[title] display",
            )
            .unwrap()
            .table
    };
    let original_table = run(university::populate(Size::small(), 42));
    let reloaded_table = run(loaded);
    assert_eq!(original_table, reloaded_table);
    println!(
        "rule R1 over the reloaded store derives the same {} rows — \
         derived data is recomputable from persisted base data.",
        reloaded_table.len()
    );

    // Fully self-describing documents: schema DDL + data in one file.
    let db2 = university::populate(Size::small(), 42);
    let doc = save_full(&db2);
    let restored = load_full(&doc).expect("well-formed doodfile");
    assert_eq!(save_full(&restored), doc);
    println!(
        "\nself-describing doodfile: {} bytes (schema DDL + data); \
         reload needs no Rust-side schema.",
        doc.len()
    );
}
