//! Intensional association patterns.
//!
//! "The intensional association pattern of a subdatabase is represented as a
//! network of E-classes and their associations" (paper §3.1). Each class
//! occurrence is a **slot**; the same base class may occur several times
//! under different alias names (`Grad`, `Grad_1`, `Grad_2` … in transitive
//! closure, §5.2).
//!
//! Every slot records the base class it ultimately specializes and,
//! when derived by a rule, the subdatabase it was derived *from* — the
//! **induced generalization association** of §4.1: "between every target
//! class and its source class there is a generalization association that is
//! induced by the deductive rule".

use crate::ids::ClassId;
use std::fmt;

/// Where a slot's class was derived from (the source end of the induced
/// generalization association).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotSource {
    /// The slot ranges over a base class of the original database.
    Base,
    /// The slot's class was derived from class `slot` of subdatabase
    /// `subdb` — the induced generalization's superclass is `subdb:slot`.
    Derived {
        /// Source subdatabase name.
        subdb: String,
        /// Source slot (class occurrence) name within that subdatabase.
        slot: String,
    },
}

/// One class occurrence in an intensional pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotDef {
    /// Display name: the class name, possibly alias-suffixed (`Grad_2`).
    pub name: String,
    /// The base class this slot's instances belong to.
    pub base: ClassId,
    /// Source of the induced generalization (paper §4.1).
    pub source: SlotSource,
    /// Inherited descriptive attributes retained on this target class, by
    /// name; `None` means all are inherited (paper §4.2: "otherwise all
    /// attributes are inherited, i.e. the default is all attributes").
    pub attrs: Option<Vec<String>>,
}

impl SlotDef {
    /// A base-class slot inheriting all attributes.
    pub fn base(name: impl Into<String>, base: ClassId) -> Self {
        SlotDef { name: name.into(), base, source: SlotSource::Base, attrs: None }
    }

    /// Whether attribute `attr` is accessible on this target class.
    pub fn attr_accessible(&self, attr: &str) -> bool {
        match &self.attrs {
            None => true,
            Some(list) => list.iter().any(|a| a == attr),
        }
    }
}

/// A derived direct association between two slots of an intension. "Since
/// Teacher and Course in the operand database are not directly associated
/// but are associated through Section, a new direct association is derived
/// between them in the resulting subdatabase" (paper §4.2, Fig. 4.3a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntEdge {
    /// Left slot index.
    pub a: u16,
    /// Right slot index.
    pub b: u16,
}

/// The intensional pattern: slots plus derived direct associations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Intension {
    /// Class occurrences, in pattern-component order.
    pub slots: Vec<SlotDef>,
    /// Derived direct associations among slots.
    pub edges: Vec<IntEdge>,
}

impl Intension {
    /// Build an intension with no edges.
    pub fn new(slots: Vec<SlotDef>) -> Self {
        assert!(slots.len() <= 64, "intension limited to 64 slots");
        Intension { slots, edges: Vec::new() }
    }

    /// Number of slots (pattern width).
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// Find a slot index by its display name.
    pub fn slot_by_name(&self, name: &str) -> Option<usize> {
        self.slots.iter().position(|s| s.name == name)
    }

    /// All slot indices whose name is `base` or `base_<k>` (alias levels),
    /// ascending by level — used by the paper's `Grad_*` ("Grad*") target
    /// notation whose intension "is determined at runtime".
    pub fn slots_of_family(&self, base: &str) -> Vec<usize> {
        let prefix = format!("{base}_");
        let mut found: Vec<(u32, usize)> = Vec::new();
        for (i, s) in self.slots.iter().enumerate() {
            if s.name == base {
                found.push((0, i));
            } else if let Some(rest) = s.name.strip_prefix(&prefix) {
                if let Ok(level) = rest.parse::<u32>() {
                    found.push((level, i));
                }
            }
        }
        found.sort_unstable();
        found.into_iter().map(|(_, i)| i).collect()
    }

    /// Add a derived direct association between two slots.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        debug_assert!(a < self.width() && b < self.width());
        let e = IntEdge { a: a as u16, b: b as u16 };
        if !self.edges.contains(&e) {
            self.edges.push(e);
        }
    }

    /// Whether two slots are directly associated in this intension.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edges.iter().any(|e| {
            (e.a as usize == a && e.b as usize == b) || (e.a as usize == b && e.b as usize == a)
        })
    }

    /// Render a pattern type of this intension as the paper does:
    /// `(Teacher, Section, Course)`.
    pub fn type_name(&self, ty: crate::subdb::pattern::PatternType) -> String {
        let names: Vec<&str> =
            ty.slots().map(|i| self.slots[i].name.as_str()).collect();
        format!("({})", names.join(", "))
    }
}

impl fmt::Display for Intension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.name)?;
        }
        write!(f, "]")?;
        if !self.edges.is_empty() {
            write!(f, " edges: ")?;
            for (i, e) in self.edges.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(
                    f,
                    "{}-{}",
                    self.slots[e.a as usize].name, self.slots[e.b as usize].name
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subdb::pattern::PatternType;

    fn intension() -> Intension {
        let mut i = Intension::new(vec![
            SlotDef::base("Teacher", ClassId(0)),
            SlotDef::base("Section", ClassId(1)),
            SlotDef::base("Course", ClassId(2)),
        ]);
        i.add_edge(0, 1);
        i.add_edge(1, 2);
        i
    }

    #[test]
    fn slot_lookup() {
        let i = intension();
        assert_eq!(i.slot_by_name("Section"), Some(1));
        assert_eq!(i.slot_by_name("Nope"), None);
        assert_eq!(i.width(), 3);
    }

    #[test]
    fn edges_are_symmetric_and_deduped() {
        let mut i = intension();
        assert!(i.has_edge(0, 1));
        assert!(i.has_edge(1, 0));
        assert!(!i.has_edge(0, 2));
        i.add_edge(0, 1);
        assert_eq!(i.edges.len(), 2);
    }

    #[test]
    fn family_slots_sorted_by_level() {
        let i = Intension::new(vec![
            SlotDef::base("Grad", ClassId(0)),
            SlotDef::base("TA", ClassId(1)),
            SlotDef::base("Grad_1", ClassId(0)),
            SlotDef::base("Grad_2", ClassId(0)),
        ]);
        assert_eq!(i.slots_of_family("Grad"), vec![0, 2, 3]);
        assert_eq!(i.slots_of_family("TA"), vec![1]);
    }

    #[test]
    fn type_name_rendering() {
        let i = intension();
        assert_eq!(i.type_name(PatternType(0b011)), "(Teacher, Section)");
        assert_eq!(i.type_name(PatternType(0b111)), "(Teacher, Section, Course)");
    }

    #[test]
    fn attr_restriction() {
        let mut s = SlotDef::base("Teacher", ClassId(0));
        assert!(s.attr_accessible("Name"));
        s.attrs = Some(vec!["SS".into(), "Degree".into()]);
        assert!(s.attr_accessible("SS"));
        assert!(!s.attr_accessible("Name"));
    }
}
