//! The fact store: one relation (set of tuples) per predicate.

use crate::program::Pred;
use dood_core::fxhash::FxHashMap;
use std::collections::BTreeSet;

/// A relation: a set of constant tuples.
pub type Relation = BTreeSet<Vec<u64>>;

/// The extensional + intensional fact store.
#[derive(Debug, Default, Clone)]
pub struct FactDb {
    rels: FxHashMap<Pred, Relation>,
}

impl FactDb {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fact. Returns whether it was new.
    pub fn insert(&mut self, pred: Pred, tuple: Vec<u64>) -> bool {
        self.rels.entry(pred).or_default().insert(tuple)
    }

    /// The relation for a predicate (empty if absent).
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.rels.get(&pred)
    }

    /// Tuples of a predicate, deterministically ordered.
    pub fn tuples(&self, pred: Pred) -> impl Iterator<Item = &Vec<u64>> {
        self.rels.get(&pred).into_iter().flatten()
    }

    /// Number of facts of a predicate.
    pub fn count(&self, pred: Pred) -> usize {
        self.rels.get(&pred).map_or(0, |r| r.len())
    }

    /// Whether a fact is present.
    pub fn contains(&self, pred: Pred, tuple: &[u64]) -> bool {
        self.rels.get(&pred).is_some_and(|r| r.contains(tuple))
    }

    /// Total fact count.
    pub fn total(&self) -> usize {
        self.rels.values().map(|r| r.len()).sum()
    }

    /// Merge `other` into `self`. Returns the number of new facts.
    pub fn absorb(&mut self, other: &FactDb) -> usize {
        let mut added = 0;
        for (&p, rel) in &other.rels {
            let target = self.rels.entry(p).or_default();
            for t in rel {
                if target.insert(t.clone()) {
                    added += 1;
                }
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = FactDb::new();
        let p = Pred(0);
        assert!(db.insert(p, vec![1, 2]));
        assert!(!db.insert(p, vec![1, 2]));
        assert!(db.contains(p, &[1, 2]));
        assert!(!db.contains(p, &[2, 1]));
        assert_eq!(db.count(p), 1);
        assert_eq!(db.total(), 1);
        assert_eq!(db.tuples(p).count(), 1);
        assert!(db.relation(Pred(9)).is_none());
    }

    #[test]
    fn absorb_counts_new_facts() {
        let mut a = FactDb::new();
        a.insert(Pred(0), vec![1]);
        let mut b = FactDb::new();
        b.insert(Pred(0), vec![1]);
        b.insert(Pred(0), vec![2]);
        b.insert(Pred(1), vec![3]);
        assert_eq!(a.absorb(&b), 2);
        assert_eq!(a.total(), 3);
    }
}
