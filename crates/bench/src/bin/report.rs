//! The evaluation report: one table per experiment (E1–E8 and E12 of DESIGN.md),
//! printed in the form recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p dood-bench --bin report
//! ```
//!
//! Unlike the bench targets (warmup + batched sampling via the in-repo
//! harness), this binary takes a few quick wall-clock medians so the whole
//! suite finishes in seconds and the *shape* of every result is visible at
//! a glance.
//!
//! It can also re-render the JSON-lines files the bench harness writes
//! (`target/bench-json/BENCH_<group>.json` by default):
//!
//! ```sh
//! cargo bench --workspace
//! cargo run --release -p dood-bench --bin report -- \
//!     --from-json target/bench-json/BENCH_*.json
//! ```

use dood_bench::harness::{fmt_ns, Record};
use dood_bench::*;
use dood_rules::{ControlMode, EvalPolicy};
use dood_workload::university;

/// Render bench-harness JSON-lines files as grouped markdown tables.
/// Returns an error line count (unparseable lines / unreadable files).
fn report_from_json(paths: &[String]) -> usize {
    println!("# dood bench results (from JSON)");
    let mut errors = 0;
    let mut records: Vec<Record> = Vec::new();
    for path in paths {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                // Skip blank lines and the `#` provenance header that
                // scripts/bench_snapshot.sh prepends to BENCH_SEED.json.
                for line in text.lines().filter(|l| {
                    let l = l.trim();
                    !l.is_empty() && !l.starts_with('#')
                }) {
                    match Record::from_json_line(line) {
                        Some(r) => records.push(r),
                        None => {
                            eprintln!("warning: unparseable line in {path}: {line}");
                            errors += 1;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("warning: cannot read {path}: {e}");
                errors += 1;
            }
        }
    }
    let mut groups: Vec<&str> = records.iter().map(|r| r.group.as_str()).collect();
    groups.dedup();
    for group in groups {
        println!("\n## {group}\n");
        println!("| bench | median | p95 | p99 | max | mean | min | samples | iters |");
        println!("|---|---|---|---|---|---|---|---|---|");
        for r in records.iter().filter(|r| r.group == group) {
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                r.bench,
                fmt_ns(r.median_ns),
                fmt_ns(r.p95_ns),
                fmt_ns(r.p99_ns),
                fmt_ns(r.max_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                r.samples,
                r.iters
            );
        }
    }
    println!("\n{} records.", records.len());
    errors
}

fn header(title: &str) {
    println!("\n## {title}\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--from-json") {
        let errors = report_from_json(&args[1..]);
        std::process::exit(if errors == 0 { 0 } else { 1 });
    }
    println!("# dood evaluation report");
    println!("(median of 5 runs per cell; debug/release per build profile)");

    // ---------------- E1 ----------------
    header("E1 — association operator vs Datalog join (Teacher * Section * Course)");
    println!("| scale | objects | patterns | dood (us) | datalog (us) | ratio |");
    println!("|---|---|---|---|---|---|");
    for factor in [1usize, 2, 4] {
        let f = assoc_fixture(factor);
        let n = assoc_dood(&f);
        assert_eq!(n, assoc_datalog(&f));
        let td = time_us(5, || assoc_dood(&f));
        let tl = time_us(5, || assoc_datalog(&f));
        println!(
            "| {factor} | {} | {n} | {td:.0} | {tl:.0} | {:.1}x |",
            f.db.object_count(),
            tl / td
        );
    }

    // ---------------- E2 ----------------
    header("E2 — transitive closure: looping (^*) vs recursive Datalog");
    println!("| shape | parts | chains | reach pairs | dood (us) | datalog (us) | ratio |");
    println!("|---|---|---|---|---|---|---|");
    for (depth, fanout) in [(4usize, 2usize), (8, 2), (12, 2), (6, 3)] {
        let f = closure_fixture(depth, fanout);
        let part = f.db.schema().class_by_name("Part").unwrap();
        let chains = closure_dood(&f);
        let pairs = closure_datalog(&f);
        let td = time_us(5, || closure_dood(&f));
        let tl = time_us(5, || closure_datalog(&f));
        println!(
            "| d{depth} f{fanout} | {} | {chains} | {pairs} | {td:.0} | {tl:.0} | {:.1}x |",
            f.db.extent_size(part),
            tl / td
        );
    }

    // ---------------- E3 ----------------
    header("E3 — chaining strategy vs workload mix (pipeline REa→REd)");
    println!("| workload | post-eval (us) | pre-eval (us) | winner |");
    println!("|---|---|---|---|");
    for (label, updates, queries) in
        [("query-heavy (1u/20q)", 1usize, 20usize), ("update-heavy (20u/1q)", 20, 1), ("mixed (10u/10q)", 10, 10)]
    {
        let t_post = time_us(5, || {
            let mut e = pipeline_engine(100, 3);
            chaining_workload(&mut e, EvalPolicy::PostEvaluated, updates, queries)
        });
        let t_pre = time_us(5, || {
            let mut e = pipeline_engine(100, 3);
            chaining_workload(&mut e, EvalPolicy::PreEvaluated, updates, queries)
        });
        let winner = if t_pre < t_post { "pre" } else { "post" };
        println!("| {label} | {t_post:.0} | {t_pre:.0} | {winner} |");
    }

    // ---------------- E4 ----------------
    header("E4 — control strategies: staleness and cost per update round");
    println!("| strategy | round (us) | REc/REd consistent after update? |");
    println!("|---|---|---|");
    {
        let t = time_us(5, || {
            let mut e = pipeline_engine(100, 4);
            e.set_mode(ControlMode::ResultOriented);
            for s in ["REa", "REb", "REc", "REd"] {
                e.set_policy(s, EvalPolicy::PreEvaluated);
            }
            e.query("context REd:Department").unwrap();
            pipeline_update(&mut e, 1);
            e.propagate().unwrap();
            e.is_consistent("REd").unwrap() && e.is_consistent("REc").unwrap()
        });
        let mut e = pipeline_engine(100, 4);
        e.set_mode(ControlMode::ResultOriented);
        for s in ["REa", "REb", "REc", "REd"] {
            e.set_policy(s, EvalPolicy::PreEvaluated);
        }
        e.query("context REd:Department").unwrap();
        pipeline_update(&mut e, 1);
        e.propagate().unwrap();
        let ok = e.is_consistent("REd").unwrap() && e.is_consistent("REc").unwrap();
        println!("| result-oriented (all pre) | {t:.0} | {ok} |");
    }
    {
        let t = time_us(5, || {
            let mut e = pipeline_engine(100, 4);
            e.query("context REd:Department").unwrap();
            rule_oriented_round(&mut e, 1)
        });
        let mut e = pipeline_engine(100, 4);
        e.query("context REd:Department").unwrap();
        let ok = rule_oriented_round(&mut e, 1);
        println!("| rule-oriented (POSTGRES mix) | {t:.0} | {ok} |");
    }

    // ---------------- E5 ----------------
    header("E5 — inheritance-path resolution across generalization depth");
    println!("| depth | patterns | query (us) |");
    println!("|---|---|---|");
    for depth in [2usize, 8, 16, 32] {
        let db = inherit_fixture(depth, 500);
        let n = inherit_query(&db, depth);
        let t = time_us(5, || inherit_query(&db, depth));
        println!("| {depth} | {n} | {t:.0} |");
    }

    // ---------------- E6 ----------------
    header("E6 — brace (outer-pattern) overhead vs plain association");
    println!("| scale | plain patterns | braced patterns | plain (us) | braced (us) | overhead |");
    println!("|---|---|---|---|---|---|");
    for factor in [1usize, 2, 4] {
        let db = university::populate(university::Size::scaled(factor), 6);
        let reg = dood_core::subdb::SubdbRegistry::new();
        let oql = dood_oql::Oql::new();
        let (plain_n, braced_n) = braces_pair(&db);
        let tp = time_us(5, || {
            oql.query(&db, &reg, "context Teacher * Section * Course").unwrap().subdb.len()
        });
        let tb = time_us(5, || {
            oql.query(&db, &reg, "context {Teacher * Section} * Course").unwrap().subdb.len()
        });
        println!(
            "| {factor} | {plain_n} | {braced_n} | {tp:.0} | {tb:.0} | {:.2}x |",
            tb / tp
        );
    }

    // ---------------- E7 ----------------
    header("E7 — grouped aggregation (COUNT … BY …, rule R2)");
    println!("| scale | qualifying patterns | query (us) |");
    println!("|---|---|---|");
    for factor in [1usize, 2, 4] {
        let db = university::populate(university::Size::scaled(factor), 8);
        let n = aggregate_query(&db, 10);
        let t = time_us(5, || aggregate_query(&db, 10));
        println!("| {factor} | {n} | {t:.0} |");
    }

    // ---------------- E8 ----------------
    header("E8 — Datalog baseline: naive vs semi-naive fixpoints");
    println!("| chain length | facts | naive (us) | semi-naive (us) | speedup |");
    println!("|---|---|---|---|---|");
    for n in [16u64, 32, 64] {
        let (p, edb) = tc_program_and_edb(n);
        let facts = dood_datalog::naive(&p, &edb).0.total();
        let tn = time_us(5, || dood_datalog::naive(&p, &edb).0.total());
        let ts = time_us(5, || dood_datalog::seminaive(&p, &edb).0.total());
        println!("| {n} | {facts} | {tn:.0} | {ts:.0} | {:.1}x |", tn / ts);
    }

    // ---------------- E12 ----------------
    header("E12 — parallel evaluation scaling (reduced scale; full curve: bench e12_parallel)");
    println!("| threads | assoc (us) | aggregate (us) |");
    println!("|---|---|---|");
    {
        let db = university::populate(university::Size::scaled(8), 42);
        let reg = dood_core::subdb::SubdbRegistry::new();
        let n1 = with_threads(1, || assoc_query(&db, &reg));
        for threads in [1usize, 2, 4] {
            with_threads(threads, || {
                assert_eq!(assoc_query(&db, &reg), n1, "thread count must not change results");
                let ta = time_us(5, || assoc_query(&db, &reg));
                let tg = time_us(5, || aggregate_query(&db, 10));
                println!("| {threads} | {ta:.0} | {tg:.0} |");
            });
        }
    }

    println!("\nDone.");
}
