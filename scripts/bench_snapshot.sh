#!/usr/bin/env bash
# Regenerate BENCH_SEED.json: run the full bench suite (E1-E8, E12, E14,
# the E15 observability-overhead bench, the E16 incremental-maintenance
# bench, the E17 compiled-pipeline bench, and the E18 closure-kernel
# bench) and concatenate the harness's JSON-lines output into one
# committed snapshot, so future changes have a performance trajectory to
# compare against. E15 prints its disabled-path overhead verdict against
# the previous snapshot, E16 prints its pre/post maintenance-ratio
# verdict, E17 prints its compile-speedup and plan-quality verdicts, and
# E18 prints its closure-speedup and delta-ratio verdicts
# (`DOOD_BENCH_STRICT=1` makes an over-budget verdict fatal for all four).
#
# Usage: scripts/bench_snapshot.sh [out-file]
# Run from anywhere; operates on the workspace containing this script.
# Re-render the snapshot with:
#   cargo run --release -p dood-bench --bin report -- --from-json BENCH_SEED.json

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_SEED.json}"
JSON_DIR="$(mktemp -d)"
trap 'rm -rf "$JSON_DIR"' EXIT

echo "== bench_snapshot: running bench suite (output: $OUT) =="
DOOD_BENCH_JSON="$JSON_DIR" cargo bench -p dood-bench

{
    echo "# dood bench snapshot ($(git rev-parse --short HEAD 2>/dev/null || echo untracked))"
    echo "# host: $(uname -sm), $(nproc) cpu(s)"
    cat "$JSON_DIR"/BENCH_*.json
} > "$OUT"

echo "bench_snapshot: wrote $(grep -c '^{' "$OUT") records to $OUT"
