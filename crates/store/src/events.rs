//! The update-event log.
//!
//! Forward chaining "will be executed whenever the data that is read by the
//! rule is updated … e.g. by associating, dissociating, inserting objects"
//! (paper §6). The store appends one event per primitive mutation; the rule
//! engine consumes the log through per-consumer watermarks.
//!
//! Consumers can additionally *register* as subscribers: a subscriber is a
//! named watermark the log tracks on the consumer's behalf, enabling lag
//! accounting (`doodprof --metrics`) and safe compaction — [`EventLog::
//! compact`] drops only events every subscriber has acknowledged, and the
//! drop count is retained (and exported through the `store.events.dropped`
//! metric) so sequence numbers stay stable across compactions.

use dood_core::ids::{AssocId, ClassId, Oid};
use dood_core::obs;
use dood_core::value::Value;

/// One primitive mutation of the extensional database.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum UpdateEvent {
    /// An object was created in a class.
    ObjectCreated { class: ClassId, oid: Oid },
    /// An object was deleted from a class.
    ObjectDeleted { class: ClassId, oid: Oid },
    /// Two objects were associated under an association.
    Associated { assoc: AssocId, from: Oid, to: Oid },
    /// Two objects were dissociated.
    Dissociated { assoc: AssocId, from: Oid, to: Oid },
    /// An attribute value changed.
    AttrSet { class: ClassId, oid: Oid, attr: AssocId, old: Value, new: Value },
}

impl UpdateEvent {
    /// The classes whose extension this event touches (for dependency
    /// analysis: a rule reading any of these classes may be affected).
    pub fn touched_classes(&self, schema: &dood_core::schema::Schema) -> Vec<ClassId> {
        match self {
            UpdateEvent::ObjectCreated { class, .. }
            | UpdateEvent::ObjectDeleted { class, .. } => vec![*class],
            UpdateEvent::Associated { assoc, .. } | UpdateEvent::Dissociated { assoc, .. } => {
                let d = schema.assoc(*assoc);
                vec![d.from, d.to]
            }
            UpdateEvent::AttrSet { class, .. } => vec![*class],
        }
    }

    /// The object identities this event touches — the seed of the dirty
    /// set for semi-naive incremental maintenance. Deleted oids are
    /// included on purpose: cached patterns referencing them must be
    /// invalidated even though the oid can no longer bind a slot.
    pub fn touched_oids(&self) -> Vec<Oid> {
        match self {
            UpdateEvent::ObjectCreated { oid, .. }
            | UpdateEvent::ObjectDeleted { oid, .. }
            | UpdateEvent::AttrSet { oid, .. } => vec![*oid],
            UpdateEvent::Associated { from, to, .. }
            | UpdateEvent::Dissociated { from, to, .. } => vec![*from, *to],
        }
    }

    /// A stable lowercase tag naming the event kind (metric labels).
    pub fn kind(&self) -> &'static str {
        match self {
            UpdateEvent::ObjectCreated { .. } => "object_created",
            UpdateEvent::ObjectDeleted { .. } => "object_deleted",
            UpdateEvent::Associated { .. } => "associated",
            UpdateEvent::Dissociated { .. } => "dissociated",
            UpdateEvent::AttrSet { .. } => "attr_set",
        }
    }
}

/// A handle to a registered log subscriber (an index into the log's
/// subscriber table; valid for the lifetime of the log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberId(usize);

/// One registered consumer: a name plus the watermark it has acknowledged.
#[derive(Debug, Clone)]
struct Subscriber {
    name: String,
    acked: u64,
}

/// An append-only event log with monotone sequence numbers, subscriber
/// watermarks, and acked-prefix compaction.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<UpdateEvent>,
    /// Events dropped from the front by [`EventLog::compact`]; sequence
    /// numbers keep counting from the original origin.
    base: u64,
    subscribers: Vec<Subscriber>,
}

impl EventLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, returning its sequence number (1-based; the
    /// sequence number equals the total event count after the append, so
    /// `seq()` is the watermark of the latest event).
    pub fn push(&mut self, e: UpdateEvent) -> u64 {
        if obs::metrics_enabled() {
            obs::metrics::counter("store.events.emitted").inc();
            obs::metrics::counter(&format!("store.events.emitted.{}", e.kind())).inc();
        }
        self.events.push(e);
        self.seq()
    }

    /// The current watermark (sequence number of the newest event; 0 when
    /// no event was ever logged).
    pub fn seq(&self) -> u64 {
        self.base + self.events.len() as u64
    }

    /// Events strictly after watermark `since` (i.e. with sequence numbers
    /// `since+1 ..= seq()`). Events already compacted away cannot be
    /// returned; compaction only drops acknowledged prefixes, so a
    /// subscriber that asks from its acked watermark never misses one.
    pub fn since(&self, since: u64) -> &[UpdateEvent] {
        let start = (since.saturating_sub(self.base) as usize).min(self.events.len());
        &self.events[start..]
    }

    /// Total number of events ever logged (compacted ones included).
    pub fn len(&self) -> usize {
        self.seq() as usize
    }

    /// Whether no event was ever logged.
    pub fn is_empty(&self) -> bool {
        self.seq() == 0
    }

    /// Number of events currently held in memory.
    pub fn retained(&self) -> usize {
        self.events.len()
    }

    /// Number of events dropped by compaction so far.
    pub fn dropped(&self) -> u64 {
        self.base
    }

    // ------------------------------------------------------------------
    // Subscribers
    // ------------------------------------------------------------------

    /// Register a named subscriber. Its acknowledged watermark starts at
    /// the current `seq()`: a new subscriber owes nothing for the past.
    pub fn subscribe(&mut self, name: impl Into<String>) -> SubscriberId {
        let id = SubscriberId(self.subscribers.len());
        self.subscribers.push(Subscriber { name: name.into(), acked: self.seq() });
        id
    }

    /// Record that a subscriber has consumed every event up to `watermark`.
    /// Watermarks are monotone: acking backwards is a no-op.
    pub fn ack(&mut self, id: SubscriberId, watermark: u64) {
        let s = &mut self.subscribers[id.0];
        s.acked = s.acked.max(watermark.min(self.base + self.events.len() as u64));
    }

    /// How many events a subscriber has not yet acknowledged.
    pub fn lag(&self, id: SubscriberId) -> u64 {
        self.seq() - self.subscribers[id.0].acked
    }

    /// Number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Per-subscriber `(name, acked watermark, lag)` rows.
    pub fn subscriber_stats(&self) -> Vec<(String, u64, u64)> {
        self.subscribers
            .iter()
            .map(|s| (s.name.clone(), s.acked, self.seq() - s.acked))
            .collect()
    }

    /// Drop every event all subscribers have acknowledged (with no
    /// subscribers, everything), returning how many were dropped. Sequence
    /// numbers are preserved: the drop count accumulates into
    /// [`EventLog::dropped`] and into the `store.events.dropped` metric.
    pub fn compact(&mut self) -> usize {
        let floor = self
            .subscribers
            .iter()
            .map(|s| s.acked)
            .min()
            .unwrap_or_else(|| self.seq());
        let n = (floor.saturating_sub(self.base) as usize).min(self.events.len());
        if n > 0 {
            self.events.drain(..n);
            self.base += n as u64;
            if obs::metrics_enabled() {
                obs::metrics::counter("store.events.dropped").add(n as u64);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_since() {
        let mut log = EventLog::new();
        assert_eq!(log.seq(), 0);
        let s1 = log.push(UpdateEvent::ObjectCreated { class: ClassId(0), oid: Oid(1) });
        let s2 = log.push(UpdateEvent::ObjectCreated { class: ClassId(0), oid: Oid(2) });
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(log.since(0).len(), 2);
        assert_eq!(log.since(1).len(), 1);
        assert_eq!(log.since(2).len(), 0);
        assert_eq!(log.since(99).len(), 0);
    }

    #[test]
    fn touched_classes_for_assoc_events() {
        use dood_core::schema::SchemaBuilder;
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.aggregate("A", "B");
        let s = b.build().unwrap();
        let assoc = s.assocs()[0].id;
        let e = UpdateEvent::Associated { assoc, from: Oid(1), to: Oid(2) };
        let touched = e.touched_classes(&s);
        assert_eq!(touched.len(), 2);
    }

    fn ev(n: u64) -> UpdateEvent {
        UpdateEvent::ObjectCreated { class: ClassId(0), oid: Oid(n) }
    }

    #[test]
    fn subscriber_watermarks_and_lag() {
        let mut log = EventLog::new();
        log.push(ev(1));
        let a = log.subscribe("engine");
        assert_eq!(log.lag(a), 0, "new subscriber owes nothing for the past");
        log.push(ev(2));
        log.push(ev(3));
        assert_eq!(log.lag(a), 2);
        log.ack(a, log.seq());
        assert_eq!(log.lag(a), 0);
        // Acking backwards is a no-op.
        log.ack(a, 1);
        assert_eq!(log.lag(a), 0);
        assert_eq!(log.subscriber_count(), 1);
        let stats = log.subscriber_stats();
        assert_eq!(stats, vec![("engine".to_string(), 3, 0)]);
    }

    #[test]
    fn compaction_preserves_sequence_numbers() {
        let mut log = EventLog::new();
        let a = log.subscribe("one");
        let b = log.subscribe("two");
        for n in 1..=5 {
            log.push(ev(n));
        }
        log.ack(a, 3);
        log.ack(b, 5);
        // Floor = min(acked) = 3.
        assert_eq!(log.compact(), 3);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.retained(), 2);
        assert_eq!(log.seq(), 5);
        assert_eq!(log.len(), 5);
        // Watermark reads above the compaction point still work.
        assert_eq!(log.since(3).len(), 2);
        assert_eq!(log.since(4).len(), 1);
        // Reads below the compaction point return only retained events.
        assert_eq!(log.since(0).len(), 2);
        // Compacting again with nothing newly acked drops nothing.
        assert_eq!(log.compact(), 0);
        log.ack(a, 5);
        assert_eq!(log.compact(), 2);
        assert_eq!(log.seq(), 5);
        assert!(!log.is_empty());
        assert_eq!(log.retained(), 0);
    }

    #[test]
    fn compact_without_subscribers_drops_everything() {
        let mut log = EventLog::new();
        for n in 1..=4 {
            log.push(ev(n));
        }
        assert_eq!(log.compact(), 4);
        assert_eq!(log.seq(), 4);
        assert_eq!(log.retained(), 0);
        // New events keep numbering from the origin.
        assert_eq!(log.push(ev(9)), 5);
    }

    #[test]
    fn event_kind_tags() {
        assert_eq!(ev(1).kind(), "object_created");
        let e = UpdateEvent::Associated { assoc: AssocId(0), from: Oid(1), to: Oid(2) };
        assert_eq!(e.kind(), "associated");
    }
}
