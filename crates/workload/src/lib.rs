//! # dood-workload
//!
//! Workload generators for the `dood` reproduction: the paper's university
//! schema and population (Fig. 2.1), the exact instances of its worked
//! examples (Fig. 3.1b, §5.1), a CAD bill-of-materials domain for
//! transitive-closure workloads, a company domain for chaining and
//! control-strategy experiments, and a social follow-graph domain for
//! deep-closure reachability under heavy fan-out. All generators are
//! deterministic in their seed.

#![warn(missing_docs)]

pub mod cad;
pub mod company;
pub mod figures;
pub mod programs;
pub mod social;
pub mod university;
