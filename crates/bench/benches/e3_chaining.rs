//! E3 — backward vs forward chaining (post- vs pre-evaluation) under
//! query-heavy, update-heavy and mixed workloads (paper §6).

use dood_bench::harness::Harness;
use dood_bench::{chaining_workload, pipeline_engine};
use dood_rules::EvalPolicy;

fn main() {
    let mut h = Harness::new("e3_chaining");
    for (label, updates, queries) in
        [("query_heavy", 1usize, 20usize), ("update_heavy", 20, 1), ("mixed", 10, 10)]
    {
        for (pname, policy) in
            [("post", EvalPolicy::PostEvaluated), ("pre", EvalPolicy::PreEvaluated)]
        {
            h.bench_batched(
                &format!("{pname}/{label}"),
                || pipeline_engine(100, 3),
                |mut engine| chaining_workload(&mut engine, policy, updates, queries),
            );
        }
    }
    h.finish();
}
