//! Bidirectional association (link) indexes.
//!
//! One index per association type; each direction maps an OID to a sorted
//! vector of neighbour OIDs. Sorted vectors give deterministic iteration
//! (reproducible query results and benchmarks) and O(log n) membership.

use dood_core::fxhash::FxHashMap;
use dood_core::ids::Oid;

/// Links of a single association, indexed in both directions.
#[derive(Debug, Default, Clone)]
pub struct AssocIndex {
    fwd: FxHashMap<Oid, Vec<Oid>>,
    rev: FxHashMap<Oid, Vec<Oid>>,
    links: usize,
}

impl AssocIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links
    }

    /// Whether there are no links.
    pub fn is_empty(&self) -> bool {
        self.links == 0
    }

    fn insert_side(map: &mut FxHashMap<Oid, Vec<Oid>>, key: Oid, val: Oid) -> bool {
        let v = map.entry(key).or_default();
        match v.binary_search(&val) {
            Ok(_) => false,
            Err(pos) => {
                v.insert(pos, val);
                true
            }
        }
    }

    fn remove_side(map: &mut FxHashMap<Oid, Vec<Oid>>, key: Oid, val: Oid) -> bool {
        if let Some(v) = map.get_mut(&key) {
            if let Ok(pos) = v.binary_search(&val) {
                v.remove(pos);
                if v.is_empty() {
                    map.remove(&key);
                }
                return true;
            }
        }
        false
    }

    /// Insert a link. Returns whether it was new.
    pub fn insert(&mut self, from: Oid, to: Oid) -> bool {
        let new = Self::insert_side(&mut self.fwd, from, to);
        if new {
            Self::insert_side(&mut self.rev, to, from);
            self.links += 1;
        }
        new
    }

    /// Remove a link. Returns whether it existed.
    pub fn remove(&mut self, from: Oid, to: Oid) -> bool {
        let existed = Self::remove_side(&mut self.fwd, from, to);
        if existed {
            Self::remove_side(&mut self.rev, to, from);
            self.links -= 1;
        }
        existed
    }

    /// Whether the link exists.
    pub fn contains(&self, from: Oid, to: Oid) -> bool {
        self.fwd
            .get(&from)
            .is_some_and(|v| v.binary_search(&to).is_ok())
    }

    /// Targets linked from `from` (sorted).
    pub fn targets(&self, from: Oid) -> &[Oid] {
        self.fwd.get(&from).map_or(&[], |v| v.as_slice())
    }

    /// Sources linked to `to` (sorted).
    pub fn sources(&self, to: Oid) -> &[Oid] {
        self.rev.get(&to).map_or(&[], |v| v.as_slice())
    }

    /// Neighbours in the chosen direction.
    pub fn neighbors(&self, oid: Oid, forward: bool) -> &[Oid] {
        if forward {
            self.targets(oid)
        } else {
            self.sources(oid)
        }
    }

    /// Out-degree of `from`.
    pub fn out_degree(&self, from: Oid) -> usize {
        self.fwd.get(&from).map_or(0, |v| v.len())
    }

    /// Remove every link touching `oid` (both directions), returning the
    /// removed `(from, to)` pairs — needed for cascade deletion and event
    /// emission.
    pub fn detach(&mut self, oid: Oid) -> Vec<(Oid, Oid)> {
        let mut removed = Vec::new();
        if let Some(tos) = self.fwd.remove(&oid) {
            for to in tos {
                Self::remove_side(&mut self.rev, to, oid);
                self.links -= 1;
                removed.push((oid, to));
            }
        }
        if let Some(froms) = self.rev.remove(&oid) {
            for from in froms {
                Self::remove_side(&mut self.fwd, from, oid);
                self.links -= 1;
                removed.push((from, oid));
            }
        }
        removed
    }

    /// Iterate all links as `(from, to)` pairs, deterministically ordered.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Oid)> + '_ {
        let mut keys: Vec<Oid> = self.fwd.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().flat_map(move |k| {
            self.fwd[&k].iter().map(move |&t| (k, t))
        })
    }

    /// Number of distinct source OIDs.
    pub fn source_count(&self) -> usize {
        self.fwd.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut ix = AssocIndex::new();
        assert!(ix.insert(Oid(1), Oid(2)));
        assert!(!ix.insert(Oid(1), Oid(2)));
        assert!(ix.contains(Oid(1), Oid(2)));
        assert_eq!(ix.len(), 1);
        assert!(ix.remove(Oid(1), Oid(2)));
        assert!(!ix.remove(Oid(1), Oid(2)));
        assert!(ix.is_empty());
    }

    #[test]
    fn neighbors_sorted_and_bidirectional() {
        let mut ix = AssocIndex::new();
        ix.insert(Oid(1), Oid(30));
        ix.insert(Oid(1), Oid(10));
        ix.insert(Oid(1), Oid(20));
        ix.insert(Oid(2), Oid(10));
        assert_eq!(ix.targets(Oid(1)), &[Oid(10), Oid(20), Oid(30)]);
        assert_eq!(ix.sources(Oid(10)), &[Oid(1), Oid(2)]);
        assert_eq!(ix.neighbors(Oid(1), true).len(), 3);
        assert_eq!(ix.neighbors(Oid(10), false).len(), 2);
        assert_eq!(ix.out_degree(Oid(1)), 3);
        assert_eq!(ix.out_degree(Oid(9)), 0);
    }

    #[test]
    fn detach_removes_both_directions() {
        let mut ix = AssocIndex::new();
        ix.insert(Oid(1), Oid(2));
        ix.insert(Oid(3), Oid(1));
        ix.insert(Oid(4), Oid(5));
        let mut removed = ix.detach(Oid(1));
        removed.sort_unstable();
        assert_eq!(removed, vec![(Oid(1), Oid(2)), (Oid(3), Oid(1))]);
        assert_eq!(ix.len(), 1);
        assert!(ix.targets(Oid(1)).is_empty());
        assert!(ix.sources(Oid(2)).is_empty());
    }

    #[test]
    fn iter_deterministic() {
        let mut ix = AssocIndex::new();
        ix.insert(Oid(2), Oid(9));
        ix.insert(Oid(1), Oid(8));
        ix.insert(Oid(1), Oid(7));
        let all: Vec<(Oid, Oid)> = ix.iter().collect();
        assert_eq!(all, vec![(Oid(1), Oid(7)), (Oid(1), Oid(8)), (Oid(2), Oid(9))]);
    }
}
