//! # dood-rules
//!
//! The deductive rule language of Alashqur, Su & Lam over the `dood` object
//! store and OQL: `IF context … THEN Subdb(Class, …)` rules that derive new
//! subdatabases (closed under the language), induced generalization
//! bookkeeping, multi-rule union semantics, backward and forward chaining,
//! and the result-oriented control strategy of §6 (with the POSTGRES
//! rule-oriented strategy implemented for comparison).

#![warn(missing_docs)]

pub mod absint;
pub mod analyze;
pub mod ast;
pub mod depgraph;
pub mod derive;
pub mod engine;
pub mod error;
pub mod maintain;
pub mod parser;
pub mod program;

pub use absint::{analyze_bounds, install_priors, Analysis, CardEnv, RuleBounds};
pub use analyze::analyze;
pub use ast::{Rule, TargetItem};
pub use depgraph::DepGraph;
pub use derive::{apply_rule, eval_rule_context, project_targets};
pub use maintain::{
    delta_apply, dirty_closure, plan_for, seed_cache, supports_incremental, DeltaOutcome,
    MaintainPlan, RuleCache,
};
pub use engine::{ChainStrategy, ControlMode, EvalPolicy, RuleEngine};
pub use error::RuleError;
pub use parser::{parse_rule, parse_rule_spanned, RuleSpans};
pub use program::{Program, ProgramQuery, ProgramRule, SchemaRef};
