//! Observability-layer integration tests (DESIGN.md §8): parallel and
//! sequential evaluation agree on every semantic metric, disabled gates
//! keep the instrumented paths inert, captured profiles expose the
//! per-operator cardinalities, and exported traces always validate.
//!
//! Metric-touching tests serialize on a shared lock: the registry is
//! process-global and `reset_all` would race between tests otherwise.

use dood::core::ids::{AssocId, Oid};
use dood::core::obs::{self, metrics, trace};
use dood::core::obs::metrics::MetricSnapshot;
use dood::core::pool::ChunkPool;
use dood::core::propcheck::check;
use dood::core::subdb::SubdbRegistry;
use dood::oql::eval::{fan_key_assoc, Evaluator};
use dood::oql::resolve::resolve_context;
use dood::oql::Parser;
use dood::rules::{EvalPolicy, RuleEngine};
use dood::workload::university;
use std::sync::{Mutex, MutexGuard};

/// Serializes every test that enables or reads the global metrics registry.
fn metrics_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn eval_rows(db: &dood::store::Database, src: &str, pool: ChunkPool) -> usize {
    let reg = SubdbRegistry::new();
    let e = Parser::parse_context_expr(src).unwrap();
    let r = resolve_context(&e, db.schema(), &reg).unwrap();
    Evaluator::new(&r, db, &reg).unwrap().with_pool(pool).eval("t").len()
}

/// The semantic (non-timing, non-pool) metrics of a snapshot, as
/// comparable `(name, value)` pairs. Pool metrics (chunk counts, worker
/// timings) legitimately differ across thread counts; everything else —
/// join evaluations, predicate selectivity, subsumption eliminations,
/// index probes, rule deltas — must not.
fn semantic_metrics(snaps: &[MetricSnapshot]) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for s in snaps {
        if s.name().starts_with("pool.") {
            continue;
        }
        match s {
            MetricSnapshot::Counter { name, value } => out.push((name.clone(), *value)),
            MetricSnapshot::Gauge { .. } => {}
            MetricSnapshot::Histogram { name, count, sum, .. } => {
                out.push((format!("{name}.count"), *count));
                out.push((format!("{name}.sum"), *sum));
            }
        }
    }
    out
}

/// Parallel evaluation must report the same semantic metric totals as the
/// sequential path: the instrumentation counts work done, not how it was
/// scheduled (ISSUE 5 acceptance).
#[test]
fn parallel_metric_totals_equal_sequential() {
    let _g = metrics_lock();
    obs::set_metrics_enabled(true);
    let db = university::populate(university::Size::small(), 42);
    let exprs = [
        "Teacher * Section * Course",
        "Department * Course * Section * Student",
        "Course ^*",
        "{Teacher * Section} * Course",
    ];
    for src in exprs {
        metrics::reset_all();
        let seq_rows = eval_rows(&db, src, ChunkPool::with_threads(1));
        let seq = semantic_metrics(&metrics::snapshot());

        metrics::reset_all();
        // cutoff 0 forces the chunked path even on small candidate sets.
        let par_rows = eval_rows(&db, src, ChunkPool::with_threads(4).cutoff(0));
        let par = semantic_metrics(&metrics::snapshot());

        assert_eq!(seq_rows, par_rows, "rows differ for `{src}`");
        assert_eq!(seq, par, "metric totals differ for `{src}`");
        assert!(
            seq.iter().any(|(n, v)| n == "oql.join.evals" && *v > 0)
                || src.contains('^'),
            "no join evaluations recorded for `{src}`: {seq:?}"
        );
    }
    metrics::reset_all();
    obs::set_metrics_enabled(false);
}

/// With both gates off, spans are inert guards and no counter moves:
/// the disabled path must stay observable-free (the <2% overhead bench
/// E15 measures the residual cost of these checks).
#[test]
fn disabled_gates_keep_instrumentation_inert() {
    let _g = metrics_lock();
    obs::set_metrics_enabled(false);
    metrics::reset_all();
    let before = semantic_metrics(&metrics::snapshot());

    let sp = trace::span("observability.test");
    assert!(!sp.on(), "span must be inert outside capture/stream");
    assert!(sp.id().is_none());
    drop(sp);

    let db = university::populate(university::Size::small(), 7);
    let rows = eval_rows(&db, "Teacher * Section * Course", ChunkPool::with_threads(2).cutoff(0));
    assert!(rows > 0);

    let after = semantic_metrics(&metrics::snapshot());
    assert_eq!(before, after, "metrics moved while disabled");
}

/// `run_query_profiled` returns a profile tree whose operator nodes carry
/// the deterministic cardinalities the paper's §4 query produces: the
/// rule-derivation span, the if-context join with its input/output rows,
/// and the query row count.
#[test]
fn profile_tree_exposes_operator_cardinalities() {
    let db = university::populate(university::Size::small(), 42);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("R1", "if context Teacher * Section * Course then TC (Teacher, Course)")
        .unwrap();
    let q = Parser::parse_query("context TC:Teacher * TC:Course display").unwrap();
    let (out, profile) = engine.run_query_profiled(&q).unwrap();
    assert!(!out.table.is_empty());

    let query = profile.find("rules.query").expect("rules.query span");
    assert_eq!(query.attr("rows"), Some(out.table.len() as i64));
    let derive = profile.find("rules.derive").expect("rules.derive span");
    assert_eq!(derive.attr("rules"), Some(1));
    let rule = profile.find("rules.rule").expect("rules.rule span");
    assert!(rule.attr("ctx_rows").unwrap_or(0) > 0);
    let join = profile.find("oql.join").expect("oql.join span");
    assert!(join.attr("rows_in").is_some());
    assert!(join.attr("rows_out").is_some());
    let ctx = profile.find("oql.context").expect("oql.context span");
    assert!(ctx.attr("rows_out").unwrap_or(-1) >= 0);

    // Determinism: same seed, same tree shape and cardinalities.
    let db2 = university::populate(university::Size::small(), 42);
    let mut engine2 = RuleEngine::new(db2);
    engine2
        .add_rule("R1", "if context Teacher * Section * Course then TC (Teacher, Course)")
        .unwrap();
    let (out2, profile2) = engine2.run_query_profiled(&q).unwrap();
    assert_eq!(out.table.len(), out2.table.len());
    assert_eq!(profile.node_count(), profile2.node_count());
    assert_eq!(
        profile.find("oql.join").unwrap().attr("rows_out"),
        profile2.find("oql.join").unwrap().attr("rows_out")
    );
}

/// Property: any capture over a random university workload exports to a
/// JSON-lines trace that [`trace::validate_trace`] accepts — children
/// close before parents, ids are unique, intervals nest (ISSUE 5
/// satellite). Replay failures with `DOOD_PROP_SEED=<seed>`.
#[test]
fn exported_traces_always_validate() {
    check("exported_traces_always_validate", 12, |g| {
        let seed = g.range(0u64..1000);
        let threads = [1usize, 2, 4][g.range(0..3) as usize];
        let db = university::populate(university::Size::small(), seed);
        let pool = ChunkPool::with_threads(threads).cutoff(0);
        let (rows, spans) = trace::capture(|| {
            eval_rows(&db, "Department * Course * Section * Student", pool)
                + eval_rows(&db, "Course ^*", ChunkPool::with_threads(1))
        });
        assert!(!spans.is_empty(), "capture produced no spans");

        // Stream order is close order: children before parents. Ties on
        // end_ns break toward the later-opened (inner) span.
        let mut by_close = spans.clone();
        by_close.sort_by_key(|r| (r.end_ns(), std::cmp::Reverse(r.id)));
        let text: String =
            by_close.iter().map(|r| r.to_json_line() + "\n").collect();
        let stats = trace::validate_trace(&text).expect("exported trace must validate");
        assert_eq!(stats.spans, spans.len());
        assert!(stats.roots >= 1);
        assert!(stats.max_depth >= 2, "expected nested spans, got {stats:?}");
        assert!(rows < usize::MAX);

        // Round-trip: parse-back equals the original records.
        for r in &by_close {
            let back = trace::SpanRecord::from_json_line(&r.to_json_line()).unwrap();
            assert_eq!(&back, r);
        }
    });
}

/// The `doodprof` CLI end-to-end: profile the builtin university program,
/// check the deterministic §4 cardinalities, then validate its own trace
/// export (ISSUE 5 acceptance).
#[test]
fn doodprof_cli_university_roundtrip() {
    let exe = env!("CARGO_BIN_EXE_doodprof");
    let dir = std::env::temp_dir().join(format!("doodprof-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");

    let out = std::process::Command::new(exe)
        .args(["--builtin", "university", "--trace-out"])
        .arg(&trace_path)
        .output()
        .expect("run doodprof");
    assert!(out.status.success(), "doodprof failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== export Teacher_course ==  rows=11"), "{text}");
    assert!(text.contains("== query Q41 ==  rows=1"), "{text}");
    assert!(text.contains("oql.join"), "{text}");
    assert!(text.contains("rows_in="), "{text}");

    let validate = std::process::Command::new(exe)
        .arg("--validate")
        .arg(&trace_path)
        .output()
        .expect("run doodprof --validate");
    assert!(
        validate.status.success(),
        "trace export did not validate: {}",
        String::from_utf8_lossy(&validate.stderr)
    );
    let vtext = String::from_utf8_lossy(&validate.stdout);
    assert!(vtext.contains(": ok —"), "{vtext}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// End to end: a `DOOD_SLOWLOG_US=0` doodprof run must append one
/// [`obs::account::QueryReport`] JSON line per derivation/query, at least
/// one carrying the compiled-plan snapshot and per-stage estimated vs.
/// actual cardinalities, and `doodprof --slowlog` must render the file
/// (tentpole acceptance: a forced-slow run produces slow records).
#[test]
fn slowlog_e2e_records_plans_and_stages() {
    let exe = env!("CARGO_BIN_EXE_doodprof");
    let dir = std::env::temp_dir().join(format!("doodprof-slowlog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("slow.jsonl");

    let out = std::process::Command::new(exe)
        .args(["--builtin", "university"])
        .env("DOOD_SLOWLOG_US", "0")
        .env("DOOD_SLOWLOG_FILE", &log)
        .output()
        .expect("run doodprof with slowlog armed");
    assert!(out.status.success(), "doodprof failed: {}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&log).expect("slowlog file written");
    let reports: Vec<obs::account::QueryReport> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| obs::account::QueryReport::from_json_line(l).expect("parseable slow record"))
        .collect();
    assert!(!reports.is_empty(), "threshold 0 must log every accounted run");
    assert!(reports.iter().any(|r| r.kind == "query"), "no query record: {text}");

    // At least one record must carry the compiled plan snapshot plus
    // per-stage estimated-vs-actual cardinalities.
    let planned = reports
        .iter()
        .find(|r| r.plan.is_some() && !r.stages.is_empty())
        .expect("no record with plan + stages");
    assert!(planned.plan.as_deref().unwrap().contains("plan mode="), "{:?}", planned.plan);
    assert!(planned.stages.iter().any(|s| s.est >= 0.0 && s.scanned >= s.kept));
    assert!(planned.rows_scanned > 0);

    // The renderer accepts its own log.
    let rendered = std::process::Command::new(exe)
        .arg("--slowlog")
        .arg(&log)
        .output()
        .expect("run doodprof --slowlog");
    assert!(rendered.status.success(), "{}", String::from_utf8_lossy(&rendered.stderr));
    let rtext = String::from_utf8_lossy(&rendered.stdout);
    assert!(rtext.contains("-- slow "), "{rtext}");
    assert!(rtext.contains("slow record(s)"), "{rtext}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property: enabling the flight recorder must not change evaluation
/// results at any thread count — the ring only observes closed spans
/// (tentpole acceptance). Replay failures with `DOOD_PROP_SEED=<seed>`.
#[test]
fn recorder_on_equals_off_across_threads() {
    let _g = metrics_lock();
    check("recorder_on_equals_off_across_threads", 9, |g| {
        let seed = g.range(0u64..1000);
        let threads = [1usize, 2, 4][g.range(0..3) as usize];
        let db = university::populate(university::Size::small(), seed);
        let reg = SubdbRegistry::new();
        let eval = |src: &str| {
            let e = Parser::parse_context_expr(src).unwrap();
            let r = resolve_context(&e, db.schema(), &reg).unwrap();
            Evaluator::new(&r, &db, &reg)
                .unwrap()
                .with_pool(ChunkPool::with_threads(threads).cutoff(0))
                .eval("t")
                .to_vec()
        };
        for src in ["Teacher * Section * Course", "Course ^*"] {
            obs::recorder::set_enabled(false);
            let off = eval(src);
            obs::recorder::set_enabled(true);
            let on = eval(src);
            obs::recorder::set_enabled(false);
            obs::recorder::clear();
            assert_eq!(off, on, "recorder changed results for `{src}` at {threads} thread(s)");
        }
    });
}

/// Scrambled statistics must trip the plan-drift watchdog during seeding,
/// force drift-flagged caches to re-seed (re-plan) instead of delta-apply
/// on subsequent maintenance, keep maintained results equal to
/// from-scratch derivation throughout, and converge — replans stop once
/// the EWMA statistics re-enter the band (tentpole acceptance).
#[test]
fn drift_watchdog_replans_and_converges() {
    let _g = metrics_lock();
    obs::set_metrics_enabled(true);
    metrics::reset_all();
    obs::stats::clear();

    let db = university::populate(university::Size::scaled(2), 42);
    // Scramble every association's fan-out statistic to an absurd value so
    // the first compiled plan's estimates are far outside DOOD_DRIFT_BAND.
    for i in 0..db.schema().assoc_count() {
        let id = AssocId::from(i as u32);
        obs::stats::set(&fan_key_assoc(id, true), 512.0);
        obs::stats::set(&fan_key_assoc(id, false), 512.0);
    }

    let mut e = RuleEngine::new(db);
    e.add_rule("R1", "if context Teacher * Section * Course then TSC (Teacher, Course)")
        .unwrap();
    e.set_policy("TSC", EvalPolicy::PreEvaluated);
    e.subdb("TSC").unwrap();
    assert!(
        metrics::counter("oql.plan.drift").get() > 0,
        "scrambled stats must trip the watchdog during seeding"
    );

    // Churn the teaching links: each propagate must keep the maintained
    // copy exact while flagged caches re-seed against corrected stats.
    let mut last_replans = 0u64;
    let mut stable_rounds = 0u32;
    for round in 0..30usize {
        poke_teaches(&mut e, round);
        e.propagate().unwrap();
        let current = e.registry().subdb("TSC").expect("TSC materialized").to_vec();
        let fresh = e.derive_fresh("TSC").unwrap().to_vec();
        assert_eq!(current, fresh, "maintained TSC diverged in round {round}");
        let replans = metrics::counter("rules.maintain.replans").get();
        if replans == last_replans {
            stable_rounds += 1;
            if stable_rounds >= 3 {
                break;
            }
        } else {
            stable_rounds = 0;
            last_replans = replans;
        }
    }
    assert!(
        metrics::counter("rules.maintain.replans").get() > 0,
        "a drift-flagged cache must force a re-seed"
    );
    assert!(
        stable_rounds >= 3,
        "replans kept firing after 30 rounds: stats never converged"
    );

    metrics::reset_all();
    obs::set_metrics_enabled(false);
    obs::stats::clear();
}

/// Flip one random Teaches link per round (associate on even rounds,
/// dissociate on odd), so every propagate has a real delta to maintain.
fn poke_teaches(e: &mut RuleEngine, k: usize) {
    let db = e.db_mut();
    let teacher = db.schema().class_by_name("Teacher").unwrap();
    let section = db.schema().class_by_name("Section").unwrap();
    let teaches = db.schema().own_link_by_name(teacher, "Teaches").unwrap();
    let ts: Vec<Oid> = db.extent(teacher).collect();
    let ss: Vec<Oid> = db.extent(section).collect();
    let (t, s) = (ts[k % ts.len()], ss[(k * 7 + 1) % ss.len()]);
    if k % 2 == 0 {
        let _ = db.associate(teaches, t, s);
    } else {
        let _ = db.dissociate(teaches, t, s);
    }
}

/// `doodlint --json` emits one parseable JSON object per diagnostic on
/// stdout and moves the summary to stderr (ISSUE 5 satellite).
#[test]
fn doodlint_json_output() {
    let exe = env!("CARGO_BIN_EXE_doodlint");
    let dir = std::env::temp_dir().join(format!("doodlint-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.dood");
    std::fs::write(
        &bad,
        "schema builtin university\n\nrule R1:\n  if context Teachr * Section\n  then X (Teachr)\n",
    )
    .unwrap();

    let out = std::process::Command::new(exe)
        .arg("--json")
        .arg(&bad)
        .output()
        .expect("run doodlint");
    assert_eq!(out.status.code(), Some(1), "lint errors must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "expected JSON diagnostics, got: {stdout}");
    for line in &lines {
        assert!(line.starts_with("{\"file\":"), "not a JSON diagnostic: {line}");
        assert!(line.ends_with('}'), "not a JSON diagnostic: {line}");
        assert!(line.contains("\"severity\":"), "{line}");
        assert!(line.contains("\"code\":"), "{line}");
    }
    assert!(stderr.contains("program(s) checked"), "summary must be on stderr: {stderr}");
    assert!(!stdout.contains("program(s) checked"), "summary leaked to stdout: {stdout}");

    // A clean builtin program emits no JSON objects and exits 0.
    let ok = std::process::Command::new(exe)
        .args(["--json", "--builtin"])
        .output()
        .expect("run doodlint --builtin");
    assert!(ok.status.success(), "{}", String::from_utf8_lossy(&ok.stderr));
    assert!(String::from_utf8_lossy(&ok.stdout).trim().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
