//! The rule dependency graph over derived subdatabases.
//!
//! Subdatabase `S` depends on `T` when some rule deriving `S` reads a class
//! of `T`. Inference chains must be acyclic: recursion is expressed through
//! the closure construct (`^*`, paper §5.2), not through cyclic rule sets.

use crate::ast::Rule;
use crate::error::RuleError;
use dood_core::fxhash::{FxHashMap, FxHashSet};
use std::sync::OnceLock;

/// The dependency structure of a rule set.
#[derive(Debug, Default, Clone)]
pub struct DepGraph {
    /// Subdatabase name → indices of rules deriving it.
    pub derives: FxHashMap<String, Vec<usize>>,
    /// Subdatabase name → subdatabases it depends on.
    pub deps: FxHashMap<String, Vec<String>>,
    /// Memoized topological order — the graph is immutable once built, and
    /// every propagation round asks for the order and the strata.
    topo_memo: OnceLock<Vec<String>>,
    /// Memoized strata.
    strata_memo: OnceLock<Vec<Vec<String>>>,
}

impl DepGraph {
    /// Build the graph from a rule set.
    pub fn build(rules: &[Rule]) -> Self {
        let mut derives: FxHashMap<String, Vec<usize>> = FxHashMap::default();
        let mut deps: FxHashMap<String, Vec<String>> = FxHashMap::default();
        for (i, r) in rules.iter().enumerate() {
            derives.entry(r.target_subdb.clone()).or_default().push(i);
            let e = deps.entry(r.target_subdb.clone()).or_default();
            for read in r.reads() {
                if !e.contains(&read) {
                    e.push(read);
                }
            }
        }
        for v in deps.values_mut() {
            v.sort_unstable();
        }
        DepGraph { derives, deps, topo_memo: OnceLock::new(), strata_memo: OnceLock::new() }
    }

    /// Rules deriving a subdatabase.
    pub fn rules_for(&self, subdb: &str) -> &[usize] {
        self.derives.get(subdb).map_or(&[], |v| v.as_slice())
    }

    /// Whether any rule derives the subdatabase.
    pub fn is_derived(&self, subdb: &str) -> bool {
        self.derives.contains_key(subdb)
    }

    /// Direct dependencies of a derived subdatabase.
    pub fn deps_of(&self, subdb: &str) -> &[String] {
        self.deps.get(subdb).map_or(&[], |v| v.as_slice())
    }

    /// All derived subdatabases in topological (dependency-first) order.
    /// Errors on cycles.
    pub fn topo_order(&self) -> Result<Vec<String>, RuleError> {
        self.topo_order_ref().map(<[String]>::to_vec)
    }

    /// Borrowing form of [`topo_order`](Self::topo_order) for internal hot
    /// paths that only read the order.
    fn topo_order_ref(&self) -> Result<&[String], RuleError> {
        if let Some(v) = self.topo_memo.get() {
            return Ok(v);
        }
        let mut order = Vec::new();
        let mut state: FxHashMap<&str, u8> = FxHashMap::default(); // 1 grey, 2 black
        let mut names: Vec<&String> = self.derives.keys().collect();
        names.sort_unstable();
        for name in names {
            self.visit(name, &mut state, &mut order, &mut Vec::new())?;
        }
        Ok(self.topo_memo.get_or_init(|| order))
    }

    fn visit<'a>(
        &'a self,
        name: &'a str,
        state: &mut FxHashMap<&'a str, u8>,
        order: &mut Vec<String>,
        stack: &mut Vec<String>,
    ) -> Result<(), RuleError> {
        match state.get(name) {
            Some(2) => return Ok(()),
            Some(1) => {
                // The DFS stack holds the path from the traversal root; only
                // the suffix from the first occurrence of `name` is the
                // actual dependency cycle.
                let first = stack.iter().position(|n| n == name).unwrap_or(0);
                let mut cycle = stack[first..].to_vec();
                cycle.push(name.to_string());
                return Err(RuleError::CyclicRules(cycle));
            }
            _ => {}
        }
        state.insert(name, 1);
        stack.push(name.to_string());
        if let Some(deps) = self.deps.get(name) {
            for d in deps {
                // Depending on a non-derived (registered-only) subdatabase is
                // fine; it is a leaf.
                if self.derives.contains_key(d.as_str()) {
                    self.visit(d, state, order, stack)?;
                }
            }
        }
        stack.pop();
        state.insert(name, 2);
        order.push(name.to_string());
        Ok(())
    }

    /// Derived subdatabases grouped into dependency strata: a member of
    /// stratum `k` depends only on members of strata `< k` (and on base
    /// data). Same-stratum subdatabases are therefore independent — forward
    /// maintenance may compute them concurrently and commit in the
    /// within-stratum (sorted-name) order. Errors on cycles.
    pub fn strata(&self) -> Result<Vec<Vec<String>>, RuleError> {
        if let Some(v) = self.strata_memo.get() {
            return Ok(v.clone());
        }
        let order = self.topo_order()?;
        let mut depth: FxHashMap<&str, usize> = FxHashMap::default();
        let mut strata: Vec<Vec<String>> = Vec::new();
        for name in &order {
            let d = self
                .deps_of(name)
                .iter()
                .filter(|dep| self.derives.contains_key(dep.as_str()))
                .map(|dep| depth[dep.as_str()] + 1)
                .max()
                .unwrap_or(0);
            depth.insert(name, d);
            if strata.len() <= d {
                strata.resize_with(d + 1, Vec::new);
            }
            strata[d].push(name.clone());
        }
        for s in &mut strata {
            s.sort_unstable();
        }
        Ok(self.strata_memo.get_or_init(|| strata).clone())
    }

    /// The transitive *derived* dependencies of a set of subdatabases, in
    /// topological (dependency-first) order and excluding the roots
    /// themselves. Incremental maintenance derives these in order before a
    /// maintenance batch, so every batch member's sources are materialized
    /// and the content delta of each is known.
    pub fn transitive_deps(&self, roots: &[String]) -> Result<Vec<String>, RuleError> {
        let mut wanted: FxHashSet<&str> = FxHashSet::default();
        let mut stack: Vec<&str> = roots.iter().map(String::as_str).collect();
        while let Some(n) = stack.pop() {
            for d in self.deps_of(n) {
                if self.derives.contains_key(d.as_str()) && wanted.insert(d.as_str()) {
                    stack.push(d);
                }
            }
        }
        let order = self.topo_order_ref()?;
        Ok(order
            .iter()
            .filter(|n| wanted.contains(n.as_str()) && !roots.contains(*n))
            .cloned()
            .collect())
    }

    /// The set of derived subdatabases that (transitively) depend on any
    /// member of `dirty` — the invalidation frontier for forward chaining.
    pub fn affected_by(&self, dirty: &FxHashSet<String>) -> FxHashSet<String> {
        let mut affected: FxHashSet<String> = FxHashSet::default();
        // Fixpoint; graphs are small (rule sets), so simple iteration.
        loop {
            let mut changed = false;
            for (subdb, deps) in &self.deps {
                if affected.contains(subdb) {
                    continue;
                }
                if deps.iter().any(|d| dirty.contains(d) || affected.contains(d)) {
                    affected.insert(subdb.clone());
                    changed = true;
                }
            }
            if !changed {
                return affected;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn rules(defs: &[(&str, &str)]) -> Vec<Rule> {
        defs.iter().map(|(n, s)| parse_rule(n, s).unwrap()).collect()
    }

    #[test]
    fn chain_topo_order() {
        // DB → REa → REb → REc (paper §6's Ra..Rd chain shape).
        let rs = rules(&[
            ("Ra", "if context A * B then REa (A)"),
            ("Rb", "if context REa:A * C then REb (A)"),
            ("Rc", "if context REb:A * D then REc (A)"),
        ]);
        let g = DepGraph::build(&rs);
        let order = g.topo_order().unwrap();
        assert_eq!(order, vec!["REa", "REb", "REc"]);
        assert!(g.is_derived("REb"));
        assert!(!g.is_derived("A"));
        assert_eq!(g.deps_of("REb"), &["REa".to_string()]);
    }

    #[test]
    fn union_rules_share_target() {
        let rs = rules(&[
            ("R4", "if context A * B then May_teach (A)"),
            ("R5", "if context A * C then May_teach (A)"),
        ]);
        let g = DepGraph::build(&rs);
        assert_eq!(g.rules_for("May_teach").len(), 2);
    }

    #[test]
    fn cycle_detected() {
        let rs = rules(&[
            ("R1", "if context Y:B * A then X (A)"),
            ("R2", "if context X:A * B then Y (B)"),
        ]);
        let g = DepGraph::build(&rs);
        assert!(matches!(g.topo_order(), Err(RuleError::CyclicRules(_))));
    }

    #[test]
    fn cycle_path_excludes_dfs_prefix() {
        // A depends on X, and X <-> Y form the cycle: the reported path must
        // be the cycle itself (X -> Y -> X), not the DFS stack with the
        // non-cycle prefix A.
        let rs = rules(&[
            ("Ra", "if context X:C * A then SA (A)"),
            ("Rx", "if context Y:C * B then X (B)"),
            ("Ry", "if context X:B * C then Y (C)"),
        ]);
        let g = DepGraph::build(&rs);
        match g.topo_order() {
            Err(RuleError::CyclicRules(path)) => {
                assert_eq!(path.first(), path.last());
                assert!(!path.contains(&"SA".to_string()), "non-cycle prefix leaked: {path:?}");
                let mut sorted: Vec<_> = path[..path.len() - 1].to_vec();
                sorted.sort();
                assert_eq!(sorted, vec!["X".to_string(), "Y".to_string()]);
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn strata_group_independent_results() {
        let rs = rules(&[
            ("Ra", "if context A * B then REa (A)"),
            ("Rb", "if context REa:A * C then REb (A)"),
            ("Rc", "if context REb:A * D then REc (A)"),
            ("Rz", "if context E * F then REz (E)"),
        ]);
        let g = DepGraph::build(&rs);
        let strata = g.strata().unwrap();
        assert_eq!(
            strata,
            vec![
                vec!["REa".to_string(), "REz".to_string()],
                vec!["REb".to_string()],
                vec!["REc".to_string()],
            ]
        );
    }

    #[test]
    fn transitive_deps_in_topo_order() {
        let rs = rules(&[
            ("Ra", "if context A * B then REa (A)"),
            ("Rb", "if context REa:A * C then REb (A)"),
            ("Rc", "if context REb:A * REa:A then REc (A)"),
            ("Rz", "if context E * F then REz (E)"),
        ]);
        let g = DepGraph::build(&rs);
        let deps = g.transitive_deps(&["REc".to_string()]).unwrap();
        assert_eq!(deps, vec!["REa".to_string(), "REb".to_string()]);
        // Roots are excluded even when they depend on each other.
        let deps = g.transitive_deps(&["REb".to_string(), "REc".to_string()]).unwrap();
        assert_eq!(deps, vec!["REa".to_string()]);
        assert!(g.transitive_deps(&["REa".to_string()]).unwrap().is_empty());
        assert!(g.transitive_deps(&["REz".to_string()]).unwrap().is_empty());
    }

    #[test]
    fn affected_propagates_transitively() {
        let rs = rules(&[
            ("Ra", "if context A * B then REa (A)"),
            ("Rb", "if context REa:A * C then REb (A)"),
            ("Rc", "if context REb:A * D then REc (A)"),
            ("Rz", "if context E * F then REz (E)"),
        ]);
        let g = DepGraph::build(&rs);
        let mut dirty = FxHashSet::default();
        dirty.insert("REa".to_string());
        let affected = g.affected_by(&dirty);
        assert!(affected.contains("REb"));
        assert!(affected.contains("REc"));
        assert!(!affected.contains("REz"));
        assert!(!affected.contains("REa")); // dirty itself is not re-listed
    }
}
