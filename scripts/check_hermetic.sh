#!/usr/bin/env bash
# Verify the workspace is hermetic: it must build and test fully offline,
# and the lockfile must contain no registry (crates.io) packages — only the
# workspace's own path crates.
#
# Usage: scripts/check_hermetic.sh
# Run from anywhere; operates on the workspace containing this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== check_hermetic: lockfile must have no registry packages =="
cargo generate-lockfile --offline
if grep -q 'registry+' Cargo.lock; then
    echo "FAIL: Cargo.lock references registry packages:" >&2
    grep -B2 'registry+' Cargo.lock >&2
    exit 1
fi
echo "ok: dependency graph is workspace-only"

echo "== check_hermetic: offline release build =="
cargo build --offline --release --workspace

echo "== check_hermetic: offline test suite =="
cargo test --offline -q

echo "== check_hermetic: offline bench + example builds =="
cargo build --offline --benches --examples --workspace

echo "check_hermetic: PASS"
