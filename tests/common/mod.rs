//! Shared helpers for the paper-example integration tests.

use dood::core::ids::Oid;
use dood::core::subdb::Subdatabase;

/// Collect a subdatabase's patterns as plain component vectors.
pub fn patterns_of(sd: &Subdatabase) -> Vec<Vec<Option<Oid>>> {
    sd.patterns().map(|p| p.components().to_vec()).collect()
}

/// Assert a subdatabase's pattern set equals the expected set, order-free.
#[track_caller]
pub fn assert_patterns(sd: &Subdatabase, mut expected: Vec<Vec<Option<Oid>>>) {
    let mut actual = patterns_of(sd);
    actual.sort();
    expected.sort();
    assert_eq!(actual, expected, "pattern set mismatch for `{}`:\n{}", sd.name, sd);
}

/// Shorthand for a non-null component.
pub fn s(oid: Oid) -> Option<Oid> {
    Some(oid)
}
