//! E3 — backward vs forward chaining (post- vs pre-evaluation) under
//! query-heavy, update-heavy and mixed workloads (paper §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dood_bench::{chaining_workload, pipeline_engine};
use dood_rules::EvalPolicy;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_chaining");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (label, updates, queries) in
        [("query_heavy", 1usize, 20usize), ("update_heavy", 20, 1), ("mixed", 10, 10)]
    {
        for (pname, policy) in
            [("post", EvalPolicy::PostEvaluated), ("pre", EvalPolicy::PreEvaluated)]
        {
            g.bench_function(BenchmarkId::new(pname, label), |b| {
                b.iter_batched(
                    || pipeline_engine(100, 3),
                    |mut engine| {
                        black_box(chaining_workload(&mut engine, policy, updates, queries))
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
