//! Ordered secondary indexes on descriptive attributes.
//!
//! Used to accelerate intra-class conditions such as
//! `Course [c# >= 6000 and c# < 7000]` (paper Query 3.2). Values are keyed
//! by a total order (floats via `total_cmp`), so range scans are exact and
//! deterministic.

use dood_core::ids::Oid;
use dood_core::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::ops::Bound;

/// A totally-ordered wrapper over [`Value`] usable as a BTreeMap key.
/// Ordering: Null < Bool < Int/Real (numeric order, mixed) < Str.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Real(_) => 2,
        Value::Str(_) => 3,
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b) = (&self.0, &other.0);
        match rank(a).cmp(&rank(b)) {
            Ordering::Equal => match (a, b) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
                (Value::Str(x), Value::Str(y)) => x.as_ref().cmp(y.as_ref()),
                _ => {
                    // Numeric: compare as f64 with total ordering; equal
                    // numerics tie-break Int before Real for determinism.
                    let fx = a.as_f64().expect("numeric rank");
                    let fy = b.as_f64().expect("numeric rank");
                    fx.total_cmp(&fy).then_with(|| {
                        let ix = matches!(a, Value::Int(_));
                        let iy = matches!(b, Value::Int(_));
                        iy.cmp(&ix)
                    })
                }
            },
            o => o,
        }
    }
}

/// An ordered index from attribute value to the set of objects holding it.
#[derive(Debug, Default, Clone)]
pub struct AttrIndex {
    map: BTreeMap<OrdValue, BTreeSet<Oid>>,
    entries: usize,
}

impl AttrIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of (value, oid) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Record that `oid` holds `value`.
    pub fn insert(&mut self, value: Value, oid: Oid) {
        if self.map.entry(OrdValue(value)).or_default().insert(oid) {
            self.entries += 1;
        }
    }

    /// Remove the record that `oid` holds `value`.
    pub fn remove(&mut self, value: &Value, oid: Oid) {
        let key = OrdValue(value.clone());
        if let Some(set) = self.map.get_mut(&key) {
            if set.remove(&oid) {
                self.entries -= 1;
            }
            if set.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// Objects with exactly this value.
    pub fn eq_scan(&self, value: &Value) -> Vec<Oid> {
        self.map
            .get(&OrdValue(value.clone()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Objects whose value falls within the bounds (null-valued entries are
    /// never returned: predicate semantics treat Null as unknown).
    pub fn range_scan(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<Oid> {
        let conv = |b: Bound<&Value>| match b {
            Bound::Included(v) => Bound::Included(OrdValue(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(OrdValue(v.clone())),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (k, set) in self.map.range((conv(lo), conv(hi))) {
            if k.0.is_null() {
                continue;
            }
            out.extend(set.iter().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ord_value_total_order() {
        let mut vals = vec![
            OrdValue(Value::str("b")),
            OrdValue(Value::Int(2)),
            OrdValue(Value::Null),
            OrdValue(Value::Real(1.5)),
            OrdValue(Value::Bool(true)),
            OrdValue(Value::str("a")),
        ];
        vals.sort();
        let shape: Vec<String> = vals.iter().map(|v| v.0.to_string()).collect();
        assert_eq!(shape, vec!["Null", "true", "1.5", "2", "a", "b"]);
    }

    #[test]
    fn insert_remove_eq_scan() {
        let mut ix = AttrIndex::new();
        ix.insert(Value::Int(5), Oid(1));
        ix.insert(Value::Int(5), Oid(2));
        ix.insert(Value::Int(7), Oid(3));
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.eq_scan(&Value::Int(5)), vec![Oid(1), Oid(2)]);
        ix.remove(&Value::Int(5), Oid(1));
        assert_eq!(ix.eq_scan(&Value::Int(5)), vec![Oid(2)]);
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn range_scan_bounds() {
        let mut ix = AttrIndex::new();
        for (v, o) in [(5000, 1), (6000, 2), (6500, 3), (7000, 4)] {
            ix.insert(Value::Int(v), Oid(o));
        }
        // Paper Query 3.2: c# >= 6000 and c# < 7000.
        let hits = ix.range_scan(
            Bound::Included(&Value::Int(6000)),
            Bound::Excluded(&Value::Int(7000)),
        );
        assert_eq!(hits, vec![Oid(2), Oid(3)]);
    }

    #[test]
    fn range_scan_skips_null() {
        let mut ix = AttrIndex::new();
        ix.insert(Value::Null, Oid(1));
        ix.insert(Value::Int(1), Oid(2));
        let hits = ix.range_scan(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(hits, vec![Oid(2)]);
    }

    #[test]
    fn mixed_numeric_ordering() {
        let mut ix = AttrIndex::new();
        ix.insert(Value::Real(1.5), Oid(1));
        ix.insert(Value::Int(2), Oid(2));
        let hits = ix.range_scan(Bound::Included(&Value::Int(1)), Bound::Excluded(&Value::Int(2)));
        assert_eq!(hits, vec![Oid(1)]);
    }
}
