//! Generalization-hierarchy reasoning: ancestor closures, inherited
//! attributes, the expanded class view of Fig. 2.2, and — most importantly —
//! **association-edge resolution** for context expressions (paper §3.2).
//!
//! The paper's rules, which this module encodes:
//!
//! * "A class inherits all the aggregation associations that connect to or
//!   emanate from its superclasses" — inheritance works in both link
//!   directions.
//! * "`RA * Section` is a legal expression since the class RA inherits the
//!   aggregation association with Section along a **unique** generalization
//!   path."
//! * "The class TA inherits the status of being related to Section from both
//!   Teacher and Grad, with each of them having its distinctive meaning. In
//!   this case at least one of the classes along the intended generalization
//!   path has to be explicitly referenced … to resolve the ambiguity."
//! * A generalization link at the instance level "is an identity link …
//!   two different perspectives of the same real-world object", so an edge
//!   between two classes of one hierarchy (e.g. `TA * Grad`, or
//!   `Student * Teacher` through Person) is a perspective traversal.
//!
//! Resolution therefore proceeds in three stages:
//!
//! 1. **Direct**: an association declared between exactly the two classes
//!    (including a direct G link). A unique direct association always wins.
//! 2. **Inherited**: non-generalization associations between the ancestor
//!    closures of the two classes. Candidates are grouped by association;
//!    if surviving candidates reach the classes through *different
//!    generalization branches*, the edge is ambiguous (the TA * Section
//!    case) — depth does **not** break ties across branches.
//! 3. **Identity**: the two classes share a common ancestor; the edge climbs
//!    one perspective chain and descends the other.

use crate::error::ResolveError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::{AssocId, ClassId};
use crate::schema::assoc::AssocKind;
use crate::schema::graph::Schema;

/// A resolved traversal step between two classes in a context expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedEdge {
    /// Traverse an ordinary association, possibly after climbing
    /// generalization chains on either side.
    ///
    /// Instance semantics: from an X-instance, climb the `up_x` G links
    /// (subclass → superclass perspective), traverse `assoc` (in `forward`
    /// direction or backwards), then descend `up_y` in reverse (superclass
    /// perspective → subclass perspective; objects lacking the subclass
    /// perspective do not qualify).
    Assoc {
        /// G links to climb on the left side, bottom-up.
        up_x: Vec<AssocId>,
        /// The ordinary association traversed.
        assoc: AssocId,
        /// `true` if the left side is the association's `from` end.
        forward: bool,
        /// G links to climb on the right side, bottom-up (descended in
        /// reverse during traversal).
        up_y: Vec<AssocId>,
    },
    /// Identity traversal within one generalization hierarchy: climb from X
    /// to the nearest common ancestor, then descend to Y.
    Identity {
        /// G links climbed from X up to the apex, bottom-up.
        up_x: Vec<AssocId>,
        /// G links descended from the apex down to Y, top-down.
        down_y: Vec<AssocId>,
    },
}

/// An inherited (or own) attribute resolved for a class: the declaring
/// ancestor and the G-chain to climb from an instance to the declaring
/// perspective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedAttr {
    /// The class that declares the attribute.
    pub owner: ClassId,
    /// The attribute association (E→D aggregation).
    pub attr: AssocId,
    /// G links to climb from the instance to the owner perspective,
    /// bottom-up. Empty when the attribute is declared on the class itself.
    pub up_chain: Vec<AssocId>,
}

/// One entry of an expanded class view (Fig. 2.2): an association available
/// on a class, with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InheritedAssoc {
    /// The association.
    pub assoc: AssocId,
    /// The ancestor (or the class itself) that declares it.
    pub declared_on: ClassId,
    /// Whether `declared_on` is the association's `from` end.
    pub emanating: bool,
    /// Generalization depth from the class to `declared_on` (0 = own).
    pub depth: u32,
}

impl Schema {
    /// All ancestors of `class` (not including itself), BFS order, each with
    /// its minimal generalization depth. Deterministic: direct supers are
    /// visited in declaration order.
    pub fn ancestors(&self, class: ClassId) -> Vec<(ClassId, u32)> {
        let mut out = Vec::new();
        let mut seen: FxHashSet<ClassId> = FxHashSet::default();
        seen.insert(class);
        let mut frontier = vec![class];
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for c in frontier {
                for &sup in self.direct_supers(c) {
                    if seen.insert(sup) {
                        out.push((sup, depth));
                        next.push(sup);
                    }
                }
            }
            frontier = next;
        }
        out
    }

    /// Whether `anc` is a (strict) ancestor of `class`.
    pub fn is_ancestor(&self, anc: ClassId, class: ClassId) -> bool {
        self.ancestors(class).iter().any(|&(c, _)| c == anc)
    }

    /// The shortest upward G-link chain from `class` to ancestor `anc`
    /// (bottom-up), or `None` if `anc` is not an ancestor. Deterministic.
    pub fn up_chain(&self, class: ClassId, anc: ClassId) -> Option<Vec<AssocId>> {
        if class == anc {
            return Some(Vec::new());
        }
        // BFS recording the first (deterministic) parent edge.
        let mut parent: FxHashMap<ClassId, (ClassId, AssocId)> = FxHashMap::default();
        let mut frontier = vec![class];
        let mut seen: FxHashSet<ClassId> = FxHashSet::default();
        seen.insert(class);
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for c in frontier {
                for &sup in self.direct_supers(c) {
                    if seen.insert(sup) {
                        let g = self.g_link(sup, c).expect("supers imply G link");
                        parent.insert(sup, (c, g));
                        if sup == anc {
                            // Reconstruct chain bottom-up.
                            let mut chain = Vec::new();
                            let mut cur = anc;
                            while cur != class {
                                let (below, g) = parent[&cur];
                                chain.push(g);
                                cur = below;
                            }
                            chain.reverse();
                            return Some(chain);
                        }
                        next.push(sup);
                    }
                }
            }
            frontier = next;
        }
        None
    }

    /// The *branch* through which `class` reaches ancestor `anc`: the direct
    /// superclass of `class` on the (deterministic shortest) path, or
    /// `class` itself when `anc == class`. Used for the paper's ambiguity
    /// rule: candidates reached through different branches conflict.
    fn branch_towards(&self, class: ClassId, anc: ClassId) -> ClassId {
        if class == anc {
            return class;
        }
        let chain = self.up_chain(class, anc).expect("anc must be ancestor");
        // First G link climbed: its `from` is the direct super used.
        self.assoc(chain[0]).from
    }

    /// All attributes available on `class`: own first, then inherited
    /// nearest-first. Duplicate associations (diamonds) appear once. Name
    /// shadowing: a nearer attribute hides a farther one of the same name.
    pub fn inherited_attrs(&self, class: ClassId) -> Vec<ResolvedAttr> {
        let mut out: Vec<ResolvedAttr> = Vec::new();
        let mut names: FxHashSet<String> = FxHashSet::default();
        let push_attrs = |s: &Schema, owner: ClassId, out: &mut Vec<ResolvedAttr>,
                              names: &mut FxHashSet<String>| {
            for a in s.own_attrs(owner) {
                let name = s.assoc(a).name.clone();
                if names.insert(name) {
                    let up_chain = s.up_chain(class, owner).expect("owner is self or ancestor");
                    out.push(ResolvedAttr { owner, attr: a, up_chain });
                }
            }
        };
        push_attrs(self, class, &mut out, &mut names);
        for (anc, _) in self.ancestors(class) {
            push_attrs(self, anc, &mut out, &mut names);
        }
        out
    }

    /// Resolve attribute `name` on `class`, searching the class itself and
    /// then its ancestors nearest-first (paper: `RA` sees `SS` from Person,
    /// `Degree` from Teacher, …).
    pub fn resolve_attr(&self, class: ClassId, name: &str) -> Result<ResolvedAttr, ResolveError> {
        if let Some(a) = self.own_attr_by_name(class, name) {
            return Ok(ResolvedAttr { owner: class, attr: a, up_chain: Vec::new() });
        }
        // Nearest-first over ancestors; ambiguity if two *different* attrs of
        // the same name appear at the same minimal depth via different
        // branches.
        let ancs = self.ancestors(class);
        let mut best: Option<(u32, ResolvedAttr)> = None;
        let mut conflict = false;
        for (anc, depth) in ancs {
            if let Some(a) = self.own_attr_by_name(anc, name) {
                match &best {
                    None => {
                        let up_chain = self.up_chain(class, anc).unwrap();
                        best = Some((depth, ResolvedAttr { owner: anc, attr: a, up_chain }));
                    }
                    Some((d, r)) if *d == depth && r.attr != a => conflict = true,
                    _ => {}
                }
            }
        }
        if conflict {
            return Err(ResolveError::Ambiguous {
                from: self.class(class).name.clone(),
                to: name.to_string(),
                candidates: vec!["multiple inherited attributes".into()],
            });
        }
        best.map(|(_, r)| r).ok_or_else(|| ResolveError::UnknownAttribute {
            class: self.class(class).name.clone(),
            attr: name.to_string(),
        })
    }

    /// The expanded view of a class with "all the associations inherited …
    /// from its superclasses explicitly represented" (Fig. 2.2).
    pub fn expanded_view(&self, class: ClassId) -> Vec<InheritedAssoc> {
        let mut out = Vec::new();
        let mut seen: FxHashSet<AssocId> = FxHashSet::default();
        let collect = |s: &Schema, c: ClassId, depth: u32, out: &mut Vec<InheritedAssoc>,
                           seen: &mut FxHashSet<AssocId>| {
            for &a in s.outgoing(c) {
                // Skip the G links that form the hierarchy itself at depth>0;
                // they are the inheritance mechanism, not inherited content.
                if depth > 0 && s.assoc(a).kind == AssocKind::Generalization {
                    continue;
                }
                if seen.insert(a) {
                    out.push(InheritedAssoc { assoc: a, declared_on: c, emanating: true, depth });
                }
            }
            for &a in s.incoming(c) {
                if s.assoc(a).kind == AssocKind::Generalization {
                    continue;
                }
                if seen.insert(a) {
                    out.push(InheritedAssoc { assoc: a, declared_on: c, emanating: false, depth });
                }
            }
        };
        collect(self, class, 0, &mut out, &mut seen);
        for (anc, depth) in self.ancestors(class) {
            collect(self, anc, depth, &mut out, &mut seen);
        }
        out
    }

    /// Resolve the association edge `x * y` of a context expression.
    /// See the module docs for the three-stage procedure.
    pub fn resolve_edge(&self, x: ClassId, y: ClassId) -> Result<ResolvedEdge, ResolveError> {
        // Stage 1: direct associations between exactly x and y.
        let direct = self.direct_assocs_between(x, y);
        match direct.len() {
            1 => {
                let a = direct[0];
                return Ok(ResolvedEdge::Assoc {
                    up_x: Vec::new(),
                    assoc: a,
                    forward: self.assoc(a).from == x,
                    up_y: Vec::new(),
                });
            }
            n if n > 1 => {
                return Err(ResolveError::Ambiguous {
                    from: self.class(x).name.clone(),
                    to: self.class(y).name.clone(),
                    candidates: direct
                        .iter()
                        .map(|&a| format!("direct link `{}`", self.assoc(a).name))
                        .collect(),
                });
            }
            _ => {}
        }

        // Stage 2: inherited non-generalization associations.
        let anc_x: Vec<(ClassId, u32)> = std::iter::once((x, 0))
            .chain(self.ancestors(x))
            .collect();
        let anc_y: Vec<(ClassId, u32)> = std::iter::once((y, 0))
            .chain(self.ancestors(y))
            .collect();
        
        let set_y: FxHashMap<ClassId, u32> = anc_y.iter().copied().collect();

        struct Cand {
            assoc: AssocId,
            forward: bool,
            xp: ClassId,
            yp: ClassId,
            depth: u32,
        }
        let mut cands: Vec<Cand> = Vec::new();
        for &(xp, dx) in &anc_x {
            for &a in self.outgoing(xp).iter().chain(self.incoming(xp).iter()) {
                let d = self.assoc(a);
                if d.kind == AssocKind::Generalization {
                    continue;
                }
                let other = d.other_end(xp);
                if let Some(&dy) = set_y.get(&other) {
                    // Avoid double-push for self-loop assocs at the same pair.
                    cands.push(Cand {
                        assoc: a,
                        forward: d.from == xp,
                        xp,
                        yp: other,
                        depth: dx + dy,
                    });
                }
            }
        }
        // Dedup: the same (assoc, xp, yp, forward) can be found twice when
        // xp's outgoing and incoming both touch (self loops).
        cands.sort_by_key(|c| (c.assoc, c.xp, c.yp, c.forward, c.depth));
        cands.dedup_by_key(|c| (c.assoc, c.xp, c.yp, c.forward));

        if !cands.is_empty() {
            // Keep only the minimal-depth candidate per association.
            let mut best_per_assoc: FxHashMap<AssocId, usize> = FxHashMap::default();
            for (i, c) in cands.iter().enumerate() {
                match best_per_assoc.get(&c.assoc) {
                    Some(&j) if cands[j].depth <= c.depth => {}
                    _ => {
                        best_per_assoc.insert(c.assoc, i);
                    }
                }
            }
            let reps: Vec<&Cand> = {
                let mut idxs: Vec<usize> = best_per_assoc.values().copied().collect();
                idxs.sort_unstable();
                idxs.into_iter().map(|i| &cands[i]).collect()
            };
            let chosen: &Cand = if reps.len() == 1 {
                reps[0]
            } else {
                // Multiple distinct associations: conflict iff they reach the
                // classes through different generalization branches.
                let branches: FxHashSet<(ClassId, ClassId)> = reps
                    .iter()
                    .map(|c| (self.branch_towards(x, c.xp), self.branch_towards(y, c.yp)))
                    .collect();
                if branches.len() > 1 {
                    return Err(ResolveError::Ambiguous {
                        from: self.class(x).name.clone(),
                        to: self.class(y).name.clone(),
                        candidates: reps
                            .iter()
                            .map(|c| {
                                format!(
                                    "`{}` via {}",
                                    self.assoc(c.assoc).name,
                                    self.class(c.xp).name
                                )
                            })
                            .collect(),
                    });
                }
                // Same branch: nearest wins; equal depth is a conflict.
                let min = reps.iter().map(|c| c.depth).min().unwrap();
                let winners: Vec<&&Cand> = reps.iter().filter(|c| c.depth == min).collect();
                if winners.len() > 1 {
                    return Err(ResolveError::Ambiguous {
                        from: self.class(x).name.clone(),
                        to: self.class(y).name.clone(),
                        candidates: winners
                            .iter()
                            .map(|c| format!("`{}`", self.assoc(c.assoc).name))
                            .collect(),
                    });
                }
                winners[0]
            };
            return Ok(ResolvedEdge::Assoc {
                up_x: self.up_chain(x, chosen.xp).unwrap(),
                assoc: chosen.assoc,
                forward: chosen.forward,
                up_y: self.up_chain(y, chosen.yp).unwrap(),
            });
        }

        // Stage 3: identity traversal through a common ancestor.
        if x != y {
            let mut best: Option<(u32, ClassId)> = None;
            for &(cx, dx) in &anc_x {
                if let Some(&dy) = set_y.get(&cx) {
                    let total = dx + dy;
                    match best {
                        Some((d, c)) if d < total || (d == total && c <= cx) => {}
                        _ => best = Some((total, cx)),
                    }
                }
            }
            if let Some((_, apex)) = best {
                let up_x = self.up_chain(x, apex).unwrap();
                let down_y = {
                    let mut c = self.up_chain(y, apex).unwrap();
                    c.reverse();
                    c
                };
                return Ok(ResolvedEdge::Identity { up_x, down_y });
            }
        }

        Err(ResolveError::NotAssociated {
            from: self.class(x).name.clone(),
            to: self.class(y).name.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::builder::SchemaBuilder;
    use crate::value::DType;

    /// A miniature of the paper's university hierarchy:
    /// Person ⊒ {Student, Teacher}; Student ⊒ Grad; Grad ⊒ {TA, RA};
    /// Teacher ⊒ {TA, Faculty}; Teacher—Section (Teaches);
    /// Student—Section (Enrolls); Advising—Grad, Advising—Faculty.
    fn uni() -> Schema {
        let mut b = SchemaBuilder::new();
        for c in [
            "Person", "Student", "Teacher", "Grad", "TA", "RA", "Faculty", "Section", "Advising",
        ] {
            b.e_class(c);
        }
        b.d_class("SS", DType::Str);
        b.d_class("Degree", DType::Str);
        b.d_class("GPA", DType::Real);
        b.attr("Person", "SS");
        b.attr("Teacher", "Degree");
        b.attr("Grad", "GPA");
        b.generalize("Person", "Student");
        b.generalize("Person", "Teacher");
        b.generalize("Student", "Grad");
        b.generalize("Grad", "TA");
        b.generalize("Grad", "RA");
        b.generalize("Teacher", "TA");
        b.generalize("Teacher", "Faculty");
        b.aggregate_named("Teacher", "Section", "Teaches");
        b.aggregate_named("Student", "Section", "Enrolls");
        b.aggregate_named("Advising", "Grad", "Advisee");
        b.aggregate_named("Advising", "Faculty", "Advisor");
        b.build().unwrap()
    }

    fn id(s: &Schema, n: &str) -> ClassId {
        s.class_by_name(n).unwrap()
    }

    #[test]
    fn ancestors_bfs_depths() {
        let s = uni();
        let ta = id(&s, "TA");
        let a: Vec<(String, u32)> = s
            .ancestors(ta)
            .into_iter()
            .map(|(c, d)| (s.class(c).name.clone(), d))
            .collect();
        assert_eq!(
            a,
            vec![
                ("Grad".to_string(), 1),
                ("Teacher".to_string(), 1),
                ("Student".to_string(), 2),
                ("Person".to_string(), 2),
            ]
        );
    }

    #[test]
    fn is_ancestor_works() {
        let s = uni();
        assert!(s.is_ancestor(id(&s, "Person"), id(&s, "TA")));
        assert!(!s.is_ancestor(id(&s, "TA"), id(&s, "Person")));
        assert!(!s.is_ancestor(id(&s, "Faculty"), id(&s, "TA")));
    }

    #[test]
    fn up_chain_shortest_path() {
        let s = uni();
        let chain = s.up_chain(id(&s, "TA"), id(&s, "Person")).unwrap();
        assert_eq!(chain.len(), 2);
        // First climbed link must start from TA's direct super (Grad or Teacher).
        let first = s.assoc(chain[0]);
        assert_eq!(first.to, id(&s, "TA"));
    }

    #[test]
    fn inherited_attrs_nearest_first() {
        let s = uni();
        let ra = id(&s, "RA");
        let attrs: Vec<String> = s
            .inherited_attrs(ra)
            .iter()
            .map(|r| s.assoc(r.attr).name.clone())
            .collect();
        // RA: GPA (Grad, depth 1), SS (Person, depth 3) — no Degree
        // (Teacher is not an ancestor of RA).
        assert_eq!(attrs, vec!["GPA".to_string(), "SS".to_string()]);
    }

    #[test]
    fn resolve_attr_inherited_with_chain() {
        let s = uni();
        let r = s.resolve_attr(id(&s, "TA"), "SS").unwrap();
        assert_eq!(r.owner, id(&s, "Person"));
        assert_eq!(r.up_chain.len(), 2);
        let own = s.resolve_attr(id(&s, "Grad"), "GPA").unwrap();
        assert!(own.up_chain.is_empty());
        assert!(s.resolve_attr(id(&s, "Faculty"), "GPA").is_err());
    }

    #[test]
    fn expanded_view_contains_inherited_links() {
        let s = uni();
        let view = s.expanded_view(id(&s, "RA"));
        let names: Vec<&str> = view.iter().map(|e| s.assoc(e.assoc).name.as_str()).collect();
        // RA inherits Enrolls (via Student), Advisee (incoming, via Grad),
        // GPA, SS.
        assert!(names.contains(&"Enrolls"));
        assert!(names.contains(&"Advisee"));
        assert!(names.contains(&"GPA"));
        assert!(names.contains(&"SS"));
        assert!(!names.contains(&"Teaches"));
    }

    #[test]
    fn direct_edge_wins() {
        let s = uni();
        match s.resolve_edge(id(&s, "Teacher"), id(&s, "Section")).unwrap() {
            ResolvedEdge::Assoc { up_x, forward, up_y, assoc } => {
                assert!(up_x.is_empty() && up_y.is_empty() && forward);
                assert_eq!(s.assoc(assoc).name, "Teaches");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn ra_section_resolves_uniquely() {
        // Paper: "RA * Section is a legal expression" — unique path via
        // Grad → Student's Enrolls.
        let s = uni();
        match s.resolve_edge(id(&s, "RA"), id(&s, "Section")).unwrap() {
            ResolvedEdge::Assoc { up_x, assoc, .. } => {
                assert_eq!(s.assoc(assoc).name, "Enrolls");
                assert_eq!(up_x.len(), 2); // RA → Grad → Student
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn ta_section_is_ambiguous() {
        // Paper: TA inherits being related to Section from both Teacher and
        // Grad — ambiguous, regardless of the differing depths.
        let s = uni();
        let err = s.resolve_edge(id(&s, "TA"), id(&s, "Section")).unwrap_err();
        match err {
            ResolveError::Ambiguous { candidates, .. } => {
                assert_eq!(candidates.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn ta_grad_uses_direct_g_link() {
        let s = uni();
        match s.resolve_edge(id(&s, "TA"), id(&s, "Grad")).unwrap() {
            ResolvedEdge::Assoc { assoc, forward, .. } => {
                assert!(s.assoc(assoc).is_generalization());
                assert!(!forward); // TA is the `to` end of G(Grad → TA)
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn disambiguation_via_intermediate_class() {
        // TA * Teacher * Section and TA * Grad * Section both resolve.
        let s = uni();
        assert!(s.resolve_edge(id(&s, "TA"), id(&s, "Teacher")).is_ok());
        assert!(s.resolve_edge(id(&s, "Teacher"), id(&s, "Section")).is_ok());
        assert!(s.resolve_edge(id(&s, "TA"), id(&s, "Grad")).is_ok());
        match s.resolve_edge(id(&s, "Grad"), id(&s, "Section")).unwrap() {
            ResolvedEdge::Assoc { assoc, up_x, .. } => {
                assert_eq!(s.assoc(assoc).name, "Enrolls");
                assert_eq!(up_x.len(), 1); // Grad → Student
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn sibling_identity_join_through_person() {
        // Student * Teacher: persons who are both students and teachers.
        let s = uni();
        match s.resolve_edge(id(&s, "Student"), id(&s, "Teacher")).unwrap() {
            ResolvedEdge::Identity { up_x, down_y } => {
                assert_eq!(up_x.len(), 1);
                assert_eq!(down_y.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn descendant_identity_when_no_direct_g() {
        // TA * Student: no direct G link, no ordinary assoc — identity climb.
        let s = uni();
        match s.resolve_edge(id(&s, "TA"), id(&s, "Student")).unwrap() {
            ResolvedEdge::Identity { up_x, down_y } => {
                assert_eq!(up_x.len(), 2); // TA → Grad → Student
                assert!(down_y.is_empty());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unrelated_classes_not_associated() {
        let s = uni();
        // Advising and Section share no association or ancestor.
        assert!(matches!(
            s.resolve_edge(id(&s, "Advising"), id(&s, "Section")),
            Err(ResolveError::NotAssociated { .. })
        ));
    }

    #[test]
    fn multiple_direct_links_ambiguous() {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.aggregate_named("A", "B", "x");
        b.aggregate_named("A", "B", "y");
        let s = b.build().unwrap();
        assert!(matches!(
            s.resolve_edge(id(&s, "A"), id(&s, "B")),
            Err(ResolveError::Ambiguous { .. })
        ));
    }

    #[test]
    fn self_loop_resolves() {
        // Course —Prereq→ Course (used by transitive closure).
        let mut b = SchemaBuilder::new();
        b.e_class("Course");
        b.aggregate_named("Course", "Course", "Prereq");
        let s = b.build().unwrap();
        let c = id(&s, "Course");
        match s.resolve_edge(c, c).unwrap() {
            ResolvedEdge::Assoc { assoc, .. } => assert_eq!(s.assoc(assoc).name, "Prereq"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
