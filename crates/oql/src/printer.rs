//! Pretty-printing of OQL ASTs back to concrete syntax.
//!
//! The printer and the parser are inverses: `parse(print(q)) == q`
//! (property-tested in the integration suite). Used for rule/query
//! persistence and diagnostics.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a context expression.
pub fn print_context(e: &ContextExpr) -> String {
    let mut out = print_seq(&e.seq);
    match e.closure {
        Some(ClosureSpec { iterations: None }) => out.push_str(" ^*"),
        Some(ClosureSpec { iterations: Some(n) }) => {
            let _ = write!(out, " ^{n}");
        }
        None => {}
    }
    out
}

fn print_seq(seq: &Seq) -> String {
    let mut out = print_item(&seq.first);
    for (op, item) in &seq.rest {
        let _ = write!(out, " {op} {}", print_item(item));
    }
    out
}

fn print_item(item: &Item) -> String {
    match item {
        Item::Class { class, cond } => {
            let mut out = class.to_string();
            if let Some(p) = cond {
                let _ = write!(out, " [{}]", print_pred(p));
            }
            out
        }
        Item::Group(seq) => format!("{{{}}}", print_seq(seq)),
    }
}

/// Render a predicate (fully parenthesized — unambiguous, re-parseable).
pub fn print_pred(p: &Pred) -> String {
    match p {
        Pred::Cmp { attr, op, value } => format!("{attr} {op} {value}"),
        Pred::And(a, b) => format!("({} and {})", print_pred(a), print_pred(b)),
        Pred::Or(a, b) => format!("({} or {})", print_pred(a), print_pred(b)),
        Pred::Not(x) => format!("(not {})", print_pred(x)),
    }
}

fn print_where(conds: &[WhereCond]) -> String {
    conds
        .iter()
        .map(|c| match c {
            WhereCond::Agg { func, target, attr, by, op, value } => {
                let f = match func {
                    AggFunc::Count => "count",
                    AggFunc::Sum => "sum",
                    AggFunc::Avg => "avg",
                    AggFunc::Min => "min",
                    AggFunc::Max => "max",
                };
                let mut s = format!("{f}({target}");
                if let Some(a) = attr {
                    let _ = write!(s, ".{a}");
                }
                if let Some(b) = by {
                    let _ = write!(s, " by {b}");
                }
                let _ = write!(s, ") {op} {value}");
                s
            }
            WhereCond::Cmp { left, op, right } => {
                let rhs = match right {
                    CmpRhs::Attr(c, a) => format!("{c}.{a}"),
                    CmpRhs::Lit(l) => l.to_string(),
                };
                format!("{}.{} {op} {rhs}", left.0, left.1)
            }
        })
        .collect::<Vec<_>>()
        .join(" and ")
}

fn print_select(items: &[SelectItem]) -> String {
    items
        .iter()
        .map(|i| match i {
            SelectItem::Attr(a) => a.clone(),
            SelectItem::Class(c) => c.to_string(),
            SelectItem::ClassAttrs(c, attrs) => format!("{c}[{}]", attrs.join(", ")),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render a full query block.
pub fn print_query(q: &Query) -> String {
    let mut out = format!("context {}", print_context(&q.context));
    if !q.where_.is_empty() {
        let _ = write!(out, " where {}", print_where(&q.where_));
    }
    if !q.select.is_empty() {
        let _ = write!(out, " select {}", print_select(&q.select));
    }
    for op in &q.ops {
        let _ = write!(out, " {op}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;

    fn roundtrip(src: &str) {
        let q = Parser::parse_query(src).unwrap();
        let printed = print_query(&q);
        let q2 = Parser::parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse of `{printed}` failed: {e}"));
        assert_eq!(q, q2, "round-trip mismatch for `{printed}`");
    }

    #[test]
    fn paper_queries_round_trip() {
        roundtrip("context Teacher * Section select name, section# display");
        roundtrip(
            "context Department * Course [c# >= 6000 and c# < 7000] * Section \
             select name, title, textbook print",
        );
        roundtrip(
            "context Faculty * Advising * May_teach:TA [GPA < 3.5] \
             select TA[name], Faculty[name] display",
        );
        roundtrip("context {{Grad} * Advising} * Faculty select Grad[SS] display");
        roundtrip("context Grad * TA * Teacher * Section * Student ^*");
        roundtrip("context Course ^3");
        roundtrip("context A ! B where count(B by A) > 2");
        roundtrip("context A [not (x = 1 or y = 2.5)] * B where A.v = B.w");
        roundtrip("context A [s = 'it''s'] select A");
    }

    #[test]
    fn printed_forms_are_stable() {
        let q = Parser::parse_query("context Teacher * Section select name display").unwrap();
        assert_eq!(
            print_query(&q),
            "context Teacher * Section select name display"
        );
    }
}
