//! # dood-oql
//!
//! OQL — the object-oriented query language of Alashqur, Su & Lam — over the
//! `dood` object store: association pattern expressions with the `*` and `!`
//! operators, intra-class conditions, brace subexpressions with subsumption
//! (outer-join-like retention), WHERE aggregation (`COUNT … BY …`), SELECT
//! projection, tabular `display`/`print`, and cyclic iteration / transitive
//! closure (`^*`, `^N`).
//!
//! Pipeline: [`parser::Parser`] → [`resolve::resolve_context`] →
//! [`plan`] (compiled, cost-ordered join pipelines) → [`eval::Evaluator`]
//! → [`wherec::apply_where`] → [`table::build_table`] → [`engine::Oql`]
//! operations.

#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod printer;
pub mod resolve;
pub mod table;
pub mod token;
pub mod wherec;

pub use engine::{eval_context, Oql, QueryOutput};
pub use eval::{fan_key_assoc, static_sel_key, ClosureState, Evaluator, ExecMode, PlannerMode};
pub use plan::{ClosurePlan, CompiledContext};
pub use error::{ParseError, QueryError};
pub use parser::Parser;
pub use table::Table;
