//! Error types for the core data model.

use crate::ids::{AssocId, ClassId, Oid};
use std::fmt;

/// Errors arising from schema construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SchemaError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// A class name was not found.
    UnknownClass(String),
    /// An association name was not found on the given class.
    UnknownAssoc { class: String, assoc: String },
    /// Two links emanating from the same class share a name.
    DuplicateAssocName { class: String, assoc: String },
    /// A D-class may not have outgoing associations.
    DClassWithOutgoingAssoc { class: String },
    /// Generalization must connect E-classes.
    GeneralizationOnDClass { class: String },
    /// The generalization graph must be acyclic.
    GeneralizationCycle { class: String },
    /// An aggregation to a D-class (descriptive attribute) must emanate from
    /// an E-class.
    AttributeOnDClass { class: String },
    /// Association endpoints must exist.
    DanglingAssoc { assoc: String },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateClass(n) => write!(f, "duplicate class name `{n}`"),
            SchemaError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            SchemaError::UnknownAssoc { class, assoc } => {
                write!(f, "class `{class}` has no association `{assoc}`")
            }
            SchemaError::DuplicateAssocName { class, assoc } => {
                write!(f, "class `{class}` declares association `{assoc}` twice")
            }
            SchemaError::DClassWithOutgoingAssoc { class } => {
                write!(f, "D-class `{class}` may not have outgoing associations")
            }
            SchemaError::GeneralizationOnDClass { class } => {
                write!(f, "generalization involving D-class `{class}` is not allowed")
            }
            SchemaError::GeneralizationCycle { class } => {
                write!(f, "generalization cycle through class `{class}`")
            }
            SchemaError::AttributeOnDClass { class } => {
                write!(f, "descriptive attribute declared on D-class `{class}`")
            }
            SchemaError::DanglingAssoc { assoc } => {
                write!(f, "association `{assoc}` references a missing class")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Errors arising from resolving an association-pattern edge between two
/// classes (paper §3.2: inheritance along generalization paths, ambiguity
/// when "a class inherits the status of being related to another class along
/// different generalization paths").
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ResolveError {
    /// The two classes are not associated, directly or through inheritance.
    NotAssociated { from: String, to: String },
    /// More than one distinct inheritance path relates the classes; the
    /// query must name an intermediate class to disambiguate (paper's
    /// `TA * Section` example).
    Ambiguous {
        from: String,
        to: String,
        /// Human-readable descriptions of the candidate paths.
        candidates: Vec<String>,
    },
    /// A named class does not exist.
    UnknownClass(String),
    /// A named attribute does not exist on (or is not inherited by) a class.
    UnknownAttribute { class: String, attr: String },
    /// An attribute exists but was projected away by a rule's THEN clause
    /// (paper §4.2: "the attribute Name will not be accessible").
    AttributeNotAccessible { class: String, attr: String },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NotAssociated { from, to } => {
                write!(f, "classes `{from}` and `{to}` are not associated")
            }
            ResolveError::Ambiguous { from, to, candidates } => {
                write!(
                    f,
                    "association between `{from}` and `{to}` is ambiguous; \
                     candidates: {}; name an intermediate class to disambiguate",
                    candidates.join(", ")
                )
            }
            ResolveError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            ResolveError::UnknownAttribute { class, attr } => {
                write!(f, "class `{class}` has no attribute `{attr}`")
            }
            ResolveError::AttributeNotAccessible { class, attr } => {
                write!(f, "attribute `{attr}` of `{class}` is not accessible here")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// Errors raised by instance-level (extensional) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum StoreError {
    /// The OID does not denote a live object.
    NoSuchObject(Oid),
    /// The object is not an instance of the expected class.
    WrongClass { oid: Oid, expected: ClassId, actual: ClassId },
    /// The association does not exist.
    NoSuchAssoc(AssocId),
    /// The objects' classes do not match the association's endpoints.
    AssocEndpointMismatch { assoc: AssocId, from: Oid, to: Oid },
    /// A single-valued association already carries a link from this object.
    CardinalityViolation { assoc: AssocId, from: Oid },
    /// Attempted to set an attribute value of the wrong type.
    TypeMismatch { class: ClassId, attr: AssocId },
    /// A value was written to an attribute not defined on the object's class.
    NoSuchAttribute { class: ClassId, attr: String },
    /// An object may have at most one perspective object per subclass.
    DuplicateSpecialization { oid: Oid, subclass: ClassId },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchObject(oid) => write!(f, "no such object {oid}"),
            StoreError::WrongClass { oid, expected, actual } => write!(
                f,
                "object {oid} has class {actual}, expected {expected}"
            ),
            StoreError::NoSuchAssoc(a) => write!(f, "no such association {a}"),
            StoreError::AssocEndpointMismatch { assoc, from, to } => write!(
                f,
                "objects {from} -> {to} do not match endpoints of association {assoc}"
            ),
            StoreError::CardinalityViolation { assoc, from } => write!(
                f,
                "association {assoc} is single-valued but {from} already has a link"
            ),
            StoreError::TypeMismatch { class, attr } => {
                write!(f, "type mismatch writing attribute {attr} of class {class}")
            }
            StoreError::NoSuchAttribute { class, attr } => {
                write!(f, "class {class} has no attribute `{attr}`")
            }
            StoreError::DuplicateSpecialization { oid, subclass } => write!(
                f,
                "object {oid} already has a perspective object in subclass {subclass}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}
