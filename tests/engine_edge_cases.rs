//! Edge cases of the deductive engine and OQL over the full stack: error
//! paths, identity joins, closure interactions, and externally registered
//! subdatabases.

use dood::core::subdb::SubdbRegistry;
use dood::core::value::Value;
use dood::oql::Oql;
use dood::rules::{RuleEngine, RuleError};
use dood::store::Database;
use dood::workload::university::{self, Size};

#[test]
fn duplicate_rule_names_rejected() {
    let db = university::populate(Size::small(), 1);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("R1", "if context Teacher * Section then T (Teacher)")
        .unwrap();
    let err = engine
        .add_rule("R1", "if context Teacher * Section then U (Teacher)")
        .unwrap_err();
    assert!(matches!(err, RuleError::DuplicateRule(_)));
}

#[test]
fn cyclic_rule_sets_rejected_eagerly() {
    let db = university::populate(Size::small(), 1);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("Ra", "if context Yy:Teacher * Section then Xx (Teacher)")
        .unwrap();
    // Registering the closing rule of the cycle fails immediately.
    let err = engine
        .add_rule("Rb", "if context Xx:Teacher * Section then Yy (Teacher)")
        .unwrap_err();
    assert!(matches!(err, RuleError::CyclicRules(_)));
}

#[test]
fn underivable_subdb_reported() {
    let db = university::populate(Size::small(), 1);
    let mut engine = RuleEngine::new(db);
    let err = engine.query("context Nope:Teacher * Section").unwrap_err();
    assert!(matches!(err, RuleError::UnderivableSubdb(n) if n == "Nope"));
}

#[test]
fn layout_mismatch_between_union_rules() {
    let db = university::populate(Size::small(), 1);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("Ra", "if context Teacher * Section then T (Teacher)")
        .unwrap();
    engine
        .add_rule("Rb", "if context Teacher * Section then T (Section)")
        .unwrap();
    assert!(matches!(
        engine.subdb("T"),
        Err(RuleError::TargetLayoutMismatch { .. })
    ));
}

/// `Student * Teacher` is an identity join through Person: it finds exactly
/// the people who hold both perspectives (the TAs of the population).
#[test]
fn identity_join_finds_student_teachers() {
    let (db, pop) = university::populate_with_handles(Size::medium(), 3);
    let reg = SubdbRegistry::new();
    let out = Oql::new()
        .query(&db, &reg, "context Student * Teacher select Student[SS]")
        .unwrap();
    // Oracle: every TA's person has both perspectives; conversely every
    // result pair must share a Person.
    assert!(out.subdb.len() >= pop.tas.len());
    let schema = db.schema();
    let student = schema.class_by_name("Student").unwrap();
    let teacher = schema.class_by_name("Teacher").unwrap();
    let person = schema.class_by_name("Person").unwrap();
    let up_s = schema.up_chain(student, person).unwrap();
    let up_t = schema.up_chain(teacher, person).unwrap();
    for p in out.subdb.patterns() {
        let s = p.get(0).unwrap();
        let t = p.get(1).unwrap();
        assert_eq!(db.climb(s, &up_s), db.climb(t, &up_t), "must share a Person");
    }
}

/// Intra-class conditions filter closure roots and every level.
#[test]
fn closure_with_conditions() {
    use dood::workload::cad::{self, BomShape};
    let (db, _) = cad::build_bom(BomShape::small(), 4);
    let reg = SubdbRegistry::new();
    // Parts cost > 50: chains only traverse qualifying parts.
    let out = Oql::new()
        .query(&db, &reg, "context Part [cost > 50] ^*")
        .unwrap();
    for p in out.subdb.patterns() {
        for oid in p.components().iter().flatten() {
            let c = db.attr(*oid, "cost").unwrap().as_f64().unwrap();
            assert!(c > 50.0, "{oid} cost {c}");
        }
    }
}

/// WHERE conditions can reference runtime closure levels (`Part_1`).
#[test]
fn where_on_closure_levels() {
    use dood::workload::cad::{self, BomShape};
    let (db, _) = cad::build_bom(BomShape::small(), 4);
    let reg = SubdbRegistry::new();
    let out = Oql::new()
        .query(&db, &reg, "context Part ^* where Part_1.cost > 50")
        .unwrap();
    for p in out.subdb.patterns() {
        let lvl1 = p.get(1).expect("filtered patterns have a level 1");
        assert!(db.attr(lvl1, "cost").unwrap().as_f64().unwrap() > 50.0);
    }
}

/// An externally registered subdatabase (not derived by any rule) is usable
/// in queries through the engine.
#[test]
fn externally_registered_subdb_queries() {
    use dood::core::subdb::{ExtPattern, Intension, SlotDef, Subdatabase};
    let (db, pop) = university::populate_with_handles(Size::small(), 5);
    let teacher = db.schema().class_by_name("Teacher").unwrap();
    let mut sd = Subdatabase::new(
        "Handpicked",
        Intension::new(vec![SlotDef::base("Teacher", teacher)]),
    );
    sd.insert(ExtPattern::new(vec![Some(pop.teachers[0])]));
    let engine = RuleEngine::new(db);
    // No rule derives Handpicked; seed the registry through a rule that
    // reads it? Simpler: the registry is engine-internal, so emulate via a
    // rule with the same effect and compare against direct OQL.
    let reg = {
        let mut r = SubdbRegistry::new();
        r.put(sd, 0);
        r
    };
    let out = Oql::new()
        .query(engine.db(), &reg, "context Handpicked:Teacher * Section")
        .unwrap();
    for p in out.subdb.patterns() {
        assert_eq!(p.get(0), Some(pop.teachers[0]));
    }
}

/// The non-association operator composes with derived subdatabases:
/// teachers NOT related to a derived course.
#[test]
fn non_association_with_derived_membership() {
    let (db, _) = university::populate_with_handles(Size::small(), 5);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule(
            "R1",
            "if context Teacher * Section * Course then TC (Teacher, Course)",
        )
        .unwrap();
    let tc = engine.subdb("TC").unwrap().clone();
    let teachers_with = tc.slot_extent(0);
    let out = engine
        .query("context Teacher ! Section")
        .unwrap();
    // Teachers unrelated to any section can never appear in TC.
    let teaches = {
        let t = engine.db().schema().class_by_name("Teacher").unwrap();
        engine.db().schema().own_link_by_name(t, "Teaches").unwrap()
    };
    for p in out.subdb.patterns() {
        let t = p.get(0).unwrap();
        let s = p.get(1).unwrap();
        assert!(!engine.db().linked(teaches, t, s));
    }
    drop(teachers_with);
}

/// A query touching no derived data leaves the registry alone.
#[test]
fn base_queries_do_not_materialize() {
    let db = university::populate(Size::small(), 5);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("R1", "if context Teacher * Section then T (Teacher)")
        .unwrap();
    engine.query("context Teacher * Section select name").unwrap();
    assert!(engine.registry().is_empty());
}

/// Mixed-type WHERE comparisons drop incomparable rows instead of erroring.
#[test]
fn incomparable_where_drops_rows() {
    let db = university::populate(Size::small(), 5);
    let reg = SubdbRegistry::new();
    // name (Str) vs c# (Int): never comparable ⇒ empty result, no error.
    let out = Oql::new()
        .query(&db, &reg, "context Department * Course where Department.name = Course.c#")
        .unwrap();
    assert!(out.subdb.is_empty());
}

/// Deletion events propagate: deleting a teacher removes the derived
/// patterns built on it.
#[test]
fn deletion_invalidates_and_rederives() {
    let (db, pop) = university::populate_with_handles(Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("R1", "if context Teacher * Section then T (Teacher, Section)")
        .unwrap();
    let before = engine.subdb("T").unwrap().slot_extent(0);
    let victim = *before.iter().next().expect("some teacher teaches");
    // Delete the whole person (cascades to the teacher perspective).
    let schema = engine.db().schema();
    let teacher = schema.class_by_name("Teacher").unwrap();
    let person = schema.class_by_name("Person").unwrap();
    let up = schema.up_chain(teacher, person).unwrap();
    let victim_person = engine.db().climb(victim, &up).unwrap();
    engine.db_mut().delete_object(victim_person).unwrap();
    engine.propagate().unwrap();
    let after = engine.subdb("T").unwrap().slot_extent(0);
    assert!(!after.contains(&victim));
    assert!(engine.is_consistent("T").unwrap());
    drop(pop);
}

/// The table renderer produces stable, sorted output with Nulls.
#[test]
fn display_output_is_deterministic() {
    let db = university::populate(Size::small(), 11);
    let reg = SubdbRegistry::new();
    let oql = Oql::new();
    let q = "context {{Grad} * Advising} * Faculty select Grad[SS], Faculty[name] display";
    let a = oql.query(&db, &reg, q).unwrap().op_results[0].1.clone();
    let b = oql.query(&db, &reg, q).unwrap().op_results[0].1.clone();
    assert_eq!(a, b);
    assert!(a.contains("Grad.SS"));
}

/// Attribute reads through a chain with a deleted intermediate perspective
/// return Null rather than erroring.
#[test]
fn missing_perspective_reads_null() {
    let mut db = Database::new(university::schema());
    let schema = db.schema_arc();
    let person = schema.class_by_name("Person").unwrap();
    let student = schema.class_by_name("Student").unwrap();
    let grad = schema.class_by_name("Grad").unwrap();
    let p = db.new_object(person).unwrap();
    db.set_attr(p, "name", Value::str("x")).unwrap();
    let st = db.specialize(p, student).unwrap();
    let g = db.specialize(st, grad).unwrap();
    assert_eq!(db.attr(g, "name").unwrap(), Value::str("x"));
    // Sever the identity chain by dissociating the G link (unusual but
    // possible through the raw association API).
    let g_link = schema.g_link(student, grad).unwrap();
    db.dissociate(g_link, st, g).unwrap();
    assert_eq!(db.attr(g, "name").unwrap(), Value::Null);
}
