//! The update-event log.
//!
//! Forward chaining "will be executed whenever the data that is read by the
//! rule is updated … e.g. by associating, dissociating, inserting objects"
//! (paper §6). The store appends one event per primitive mutation; the rule
//! engine consumes the log through per-consumer watermarks.

use dood_core::ids::{AssocId, ClassId, Oid};
use dood_core::value::Value;

/// One primitive mutation of the extensional database.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum UpdateEvent {
    /// An object was created in a class.
    ObjectCreated { class: ClassId, oid: Oid },
    /// An object was deleted from a class.
    ObjectDeleted { class: ClassId, oid: Oid },
    /// Two objects were associated under an association.
    Associated { assoc: AssocId, from: Oid, to: Oid },
    /// Two objects were dissociated.
    Dissociated { assoc: AssocId, from: Oid, to: Oid },
    /// An attribute value changed.
    AttrSet { class: ClassId, oid: Oid, attr: AssocId, old: Value, new: Value },
}

impl UpdateEvent {
    /// The classes whose extension this event touches (for dependency
    /// analysis: a rule reading any of these classes may be affected).
    pub fn touched_classes(&self, schema: &dood_core::schema::Schema) -> Vec<ClassId> {
        match self {
            UpdateEvent::ObjectCreated { class, .. }
            | UpdateEvent::ObjectDeleted { class, .. } => vec![*class],
            UpdateEvent::Associated { assoc, .. } | UpdateEvent::Dissociated { assoc, .. } => {
                let d = schema.assoc(*assoc);
                vec![d.from, d.to]
            }
            UpdateEvent::AttrSet { class, .. } => vec![*class],
        }
    }
}

/// An append-only event log with monotone sequence numbers.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    events: Vec<UpdateEvent>,
}

impl EventLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, returning its sequence number (1-based; the
    /// sequence number equals the log length after the append, so `seq()`
    /// is the watermark of the latest event).
    pub fn push(&mut self, e: UpdateEvent) -> u64 {
        self.events.push(e);
        self.events.len() as u64
    }

    /// The current watermark (sequence number of the newest event; 0 when
    /// empty).
    pub fn seq(&self) -> u64 {
        self.events.len() as u64
    }

    /// Events strictly after watermark `since` (i.e. with sequence numbers
    /// `since+1 ..= seq()`).
    pub fn since(&self, since: u64) -> &[UpdateEvent] {
        &self.events[(since as usize).min(self.events.len())..]
    }

    /// Total number of events ever logged.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_since() {
        let mut log = EventLog::new();
        assert_eq!(log.seq(), 0);
        let s1 = log.push(UpdateEvent::ObjectCreated { class: ClassId(0), oid: Oid(1) });
        let s2 = log.push(UpdateEvent::ObjectCreated { class: ClassId(0), oid: Oid(2) });
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(log.since(0).len(), 2);
        assert_eq!(log.since(1).len(), 1);
        assert_eq!(log.since(2).len(), 0);
        assert_eq!(log.since(99).len(), 0);
    }

    #[test]
    fn touched_classes_for_assoc_events() {
        use dood_core::schema::SchemaBuilder;
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.aggregate("A", "B");
        let s = b.build().unwrap();
        let assoc = s.assocs()[0].id;
        let e = UpdateEvent::Associated { assoc, from: Oid(1), to: Oid(2) };
        let touched = e.touched_classes(&s);
        assert_eq!(touched.len(), 2);
    }
}
