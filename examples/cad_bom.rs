//! A CAD/CAM scenario — one of the application areas the paper's
//! introduction motivates: bill-of-materials rules, a user-defined
//! operation (the behavioural OO dimension), and supplier analysis.
//!
//! ```sh
//! cargo run --example cad_bom
//! ```

use dood::core::value::Value;
use dood::oql::Table;
use dood::rules::RuleEngine;
use dood::workload::cad::{self, BomShape};

fn main() {
    let shape = BomShape { depth: 4, fanout: 3, roots: 2, share_per_mille: 100 };
    let (mut db, roots) = cad::build_bom(shape, 3);

    // Add suppliers for leaf parts.
    let schema = db.schema_arc();
    let part = schema.class_by_name("Part").unwrap();
    let supplier = schema.class_by_name("Supplier").unwrap();
    let supplies = schema.own_link_by_name(supplier, "Supplies").unwrap();
    let component = schema.own_link_by_name(part, "Component").unwrap();
    let leaf_parts: Vec<_> = db
        .extent(part)
        .filter(|&p| db.neighbors(component, p, true).is_empty())
        .collect();
    for (i, chunk) in leaf_parts.chunks(8).enumerate() {
        let s = db.new_object(supplier).unwrap();
        db.set_attr(s, "sname", Value::str(format!("acme-{i}"))).unwrap();
        for &p in chunk {
            db.associate(supplies, s, p).unwrap();
        }
    }
    println!(
        "BOM: {} parts ({} leaves), {} assemblies at the root",
        db.extent_size(part),
        leaf_parts.len(),
        roots.len()
    );

    let mut engine = RuleEngine::new(db);

    // Rule: expensive components (cost > 60) of any part.
    engine
        .add_rule(
            "Expensive",
            "if context Part * Part_1 [cost > 60] then Expensive_parts (Part, Part_1)",
        )
        .expect("rule");

    // A user-defined operation over a result table — the paper's
    // "user-defined operation (e.g. Rotate, Order_part …)".
    engine.oql_mut().register_op(
        "order_part",
        Box::new(|t: &Table| {
            format!("purchase orders issued for {} expensive component(s)", t.len())
        }),
    );

    let out = engine
        .query(
            "context Expensive_parts:Part * Expensive_parts:Part_1 \
             select Part_1[pname], Part_1[cost] order_part",
        )
        .expect("query");
    println!("{}", out.op_results[0].1);

    // Full part explosion with supplier lookup: which suppliers feed each
    // root assembly, transitively?
    let out = engine
        .query("context Part [cost = 0] ^*")
        .expect("explosion");
    println!(
        "part explosion from the roots: {} chains, max depth {}",
        out.subdb.len(),
        out.subdb.intension.width()
    );

    // Supplier coverage via plain OQL over leaves.
    let out = engine
        .query("context Supplier * Part select sname, pname display")
        .expect("suppliers");
    println!("== Supplier deliveries ==");
    println!("{}", out.op_results[0].1);

    // Aggregate: suppliers providing more than 5 parts.
    let out = engine
        .query(
            "context Supplier * Part where count(Part by Supplier) > 5 \
             select sname display",
        )
        .expect("big suppliers");
    println!("== Suppliers with more than 5 parts ==");
    println!("{}", out.op_results[0].1);
}
