//! E16 — incremental forward maintenance (DESIGN.md §9): the semi-naive
//! delta path against full recomputation and backward chaining on the E3
//! pipeline, the delta-size vs cost curve (one propagate absorbing a batch
//! of 1/8/64 updates), and a deletion-heavy workload exercising the
//! counting-deletion path.
//!
//! Afterwards compares this run's `pre/update_heavy` median against its
//! `post/update_heavy` median: the acceptance bar is ≤ 2× (before the
//! delta rewrite the committed seed showed ~15×: 5.76ms vs 384µs).
//! Prints `PASS`/`WARN`; exits nonzero on a miss only under
//! `DOOD_BENCH_STRICT=1` (shared hosts are noisy, so the hard gate is
//! opt-in for `scripts/ci.sh` and `scripts/bench_snapshot.sh`).

use dood_bench::harness::{fmt_ns, Harness, Record};
use dood_bench::{chaining_workload, pipeline_engine, pipeline_update};
use dood_rules::{EvalPolicy, RuleEngine};
use std::path::PathBuf;

/// Allowed pre/post update-heavy ratio (the maintained copy may cost at
/// most twice the invalidate-and-rederive-on-query strategy).
const RATIO_BUDGET: f64 = 2.0;

/// The E3 pipeline with every stage pre-evaluated and materialized, so the
/// measured work is maintenance, not first derivation: one warm-up
/// update+propagate round seeds the per-rule maintenance caches (a
/// one-time cost amortized over the engine's lifetime), leaving the timed
/// iterations pure steady-state maintenance.
fn pre_engine(incremental: bool) -> RuleEngine {
    let mut e = pipeline_engine(100, 3);
    for s in ["REa", "REb", "REc", "REd"] {
        e.set_policy(s, EvalPolicy::PreEvaluated);
    }
    e.set_incremental(incremental);
    e.query("context REd:Department select dname").unwrap();
    pipeline_update(&mut e, 1_000_000);
    e.propagate().unwrap();
    e
}

/// Delete `rounds` employees one commit at a time, propagating after each;
/// returns total rederived subdatabases (keeps the optimizer honest).
fn deletion_workload(engine: &mut RuleEngine, rounds: usize) -> usize {
    let employee = engine.db().schema().class_by_name("Employee").unwrap();
    let mut rederived = 0;
    for i in 0..rounds {
        let db = engine.db_mut();
        let n = db.extent_size(employee);
        let victim = db.extent(employee).nth((i * 7) % n).unwrap();
        db.delete_object(victim).unwrap();
        rederived += engine.propagate().unwrap().len();
    }
    rederived
}

fn main() {
    let mut h = Harness::new("e16_incremental");

    // The E3 update-heavy workload (20 update+propagate rounds, 1 query)
    // three ways: semi-naive delta maintenance, full recomputation per
    // propagate, and backward chaining (invalidate, rederive on query).
    h.bench_batched(
        "pre/update_heavy",
        || pre_engine(true),
        |mut e| chaining_workload(&mut e, EvalPolicy::PreEvaluated, 20, 1),
    );
    h.bench_batched(
        "full/update_heavy",
        || pre_engine(false),
        |mut e| chaining_workload(&mut e, EvalPolicy::PreEvaluated, 20, 1),
    );
    h.bench_batched(
        "post/update_heavy",
        || pipeline_engine(100, 3),
        |mut e| chaining_workload(&mut e, EvalPolicy::PostEvaluated, 20, 1),
    );

    // Delta-size vs cost: one propagate absorbing a batch of n updates.
    for n in [1usize, 8, 64] {
        h.bench_batched(
            &format!("delta/batch{n}"),
            || {
                let mut e = pre_engine(true);
                for i in 0..n {
                    pipeline_update(&mut e, i);
                }
                e
            },
            |mut e| e.propagate().unwrap().len(),
        );
    }

    // Deletion-heavy maintenance: derivation counts, not rederivation.
    h.bench_batched("del/update_heavy", || pre_engine(true), |mut e| deletion_workload(&mut e, 20));

    h.finish();
    check_ratio();
}

/// Read back this run's records and check `pre/update_heavy` against
/// `post/update_heavy`.
fn check_ratio() {
    if std::env::var("DOOD_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        println!("# e16 ratio check skipped (smoke mode: timings are not meaningful)");
        return;
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_default();
    let own_path = match std::env::var_os("DOOD_BENCH_JSON") {
        Some(dir) => PathBuf::from(dir).join("BENCH_e16_incremental.json"),
        None => workspace.join("target/bench-json/BENCH_e16_incremental.json"),
    };
    let Some(pre) = median_of(&own_path, "e16_incremental", "pre/update_heavy") else {
        println!("# e16 ratio check skipped (no pre/update_heavy record in {})", own_path.display());
        return;
    };
    let Some(post) = median_of(&own_path, "e16_incremental", "post/update_heavy") else {
        println!("# e16 ratio check skipped (no post/update_heavy record in {})", own_path.display());
        return;
    };
    let ratio = pre / post;
    let verdict = if ratio <= RATIO_BUDGET { "PASS" } else { "WARN" };
    println!(
        "# e16 maintenance ratio: {verdict} — pre/update_heavy {} vs post/update_heavy {} ({:.2}x, budget {:.0}x)",
        fmt_ns(pre),
        fmt_ns(post),
        ratio,
        RATIO_BUDGET
    );
    if verdict == "WARN" && std::env::var("DOOD_BENCH_STRICT").is_ok_and(|v| v == "1") {
        eprintln!("# e16: over budget under DOOD_BENCH_STRICT=1");
        std::process::exit(1);
    }
}

/// The first `group`/`bench` record's median in a JSON-lines bench file.
fn median_of(path: &PathBuf, group: &str, bench: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .filter_map(Record::from_json_line)
        .find(|r| r.group == group && r.bench == bench)
        .map(|r| r.median_ns)
}
