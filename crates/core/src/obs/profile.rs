//! The EXPLAIN ANALYZE surface: a plan-shaped tree of profiled operators.
//!
//! A [`Profile`] is built from the spans collected by
//! [`super::trace::capture`]: each node is one span (plan operator, rule
//! application, pool chunk, …) with its wall time and integer attributes
//! (cardinalities, selectivities), children ordered by start time. The
//! `doodprof` CLI renders these trees; engines expose `*_profiled` entry
//! points returning them.

use super::trace::SpanRecord;
use crate::fxhash::FxHashMap;

/// One node of an EXPLAIN ANALYZE tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Span site name (`oql.join`, `rules.rule`, …).
    pub name: String,
    /// Dynamic label (rule name, context name), when any.
    pub label: Option<String>,
    /// Thread ordinal the span ran on.
    pub thread: u64,
    /// Wall time in nanoseconds.
    pub wall_ns: u64,
    /// Integer attributes in recording order (cardinalities, counts).
    pub attrs: Vec<(String, i64)>,
    /// Child operators, ordered by start time.
    pub children: Vec<Profile>,
}

impl Profile {
    /// Build the profile forest from a captured span set: every span whose
    /// parent is absent from the set becomes a root. Children are ordered
    /// by `(start_ns, id)`.
    pub fn from_spans(spans: &[SpanRecord]) -> Vec<Profile> {
        // Sort indices by start so children attach in order.
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by_key(|&i| (spans[i].start_ns, spans[i].id));
        let ids: FxHashMap<u64, ()> = spans.iter().map(|r| (r.id, ())).collect();
        let mut children_of: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        let mut roots: Vec<usize> = Vec::new();
        for &i in &order {
            match spans[i].parent {
                Some(p) if ids.contains_key(&p) => {
                    children_of.entry(p).or_default().push(i)
                }
                _ => roots.push(i),
            }
        }
        fn build(
            i: usize,
            spans: &[SpanRecord],
            children_of: &FxHashMap<u64, Vec<usize>>,
        ) -> Profile {
            let r = &spans[i];
            Profile {
                name: r.name.clone(),
                label: r.label.clone(),
                thread: r.thread,
                wall_ns: r.dur_ns,
                attrs: r.attrs.clone(),
                children: children_of
                    .get(&r.id)
                    .map(|kids| {
                        kids.iter().map(|&k| build(k, spans, children_of)).collect()
                    })
                    .unwrap_or_default(),
            }
        }
        roots.into_iter().map(|i| build(i, spans, &children_of)).collect()
    }

    /// Build a single-rooted profile: the sole root when there is exactly
    /// one, otherwise a synthetic `run` node wrapping the forest (wall
    /// time = sum of the roots').
    pub fn single(spans: &[SpanRecord]) -> Profile {
        let mut forest = Self::from_spans(spans);
        if forest.len() == 1 {
            return forest.remove(0);
        }
        Profile {
            name: "run".into(),
            label: None,
            thread: 0,
            wall_ns: forest.iter().map(|p| p.wall_ns).sum(),
            attrs: Vec::new(),
            children: forest,
        }
    }

    /// An attribute's value, by key.
    pub fn attr(&self, key: &str) -> Option<i64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// The first descendant (depth-first, self included) with this span
    /// name.
    pub fn find(&self, name: &str) -> Option<&Profile> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total node count (self included).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(Profile::node_count).sum::<usize>()
    }

    /// Render the tree with box-drawing guides, one operator per line:
    /// `name [label] wall attrs…`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", true, true);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, root: bool) {
        if !root {
            out.push_str(prefix);
            out.push_str(if last { "└─ " } else { "├─ " });
        }
        out.push_str(&self.name);
        if let Some(l) = &self.label {
            out.push_str(&format!(" [{l}]"));
        }
        out.push_str(&format!("  {}", fmt_ns(self.wall_ns)));
        for (k, v) in &self.attrs {
            out.push_str(&format!("  {k}={v}"));
        }
        out.push('\n');
        let child_prefix = if root {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        for (i, c) in self.children.iter().enumerate() {
            c.render_into(out, &child_prefix, i + 1 == self.children.len(), false);
        }
    }

    /// Serialize the tree as one JSON object (nested `children` arrays).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"name\":\"{}\"",
            super::json_escape(&self.name)
        ));
        if let Some(l) = &self.label {
            s.push_str(&format!(",\"label\":\"{}\"", super::json_escape(l)));
        }
        s.push_str(&format!(",\"thread\":{},\"wall_ns\":{}", self.thread, self.wall_ns));
        if !self.attrs.is_empty() {
            s.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{v}", super::json_escape(k)));
            }
            s.push('}');
        }
        if !self.children.is_empty() {
            s.push_str(",\"children\":[");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&c.to_json());
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

/// Format nanoseconds human-readably with integer arithmetic only:
/// `857ns`, `12.3µs`, `4.56ms`, `1.20s`.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{}.{}µs", ns / 1_000, (ns % 1_000) / 100)
    } else if ns < 1_000_000_000 {
        format!("{}.{:02}ms", ns / 1_000_000, (ns % 1_000_000) / 10_000)
    } else {
        format!("{}.{:02}s", ns / 1_000_000_000, (ns % 1_000_000_000) / 10_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::trace::{capture, span};

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(857), "857ns");
        assert_eq!(fmt_ns(12_345), "12.3µs");
        assert_eq!(fmt_ns(4_560_000), "4.56ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }

    #[test]
    fn tree_from_captured_spans() {
        let ((), spans) = capture(|| {
            let mut q = span("test.profile.query");
            q.attr("rows", 2);
            {
                let _a = span("test.profile.ctx");
                let _b = span("test.profile.join");
            }
            let _w = span("test.profile.where");
        });
        let p = Profile::single(&spans);
        assert_eq!(p.name, "test.profile.query");
        assert_eq!(p.attr("rows"), Some(2));
        assert_eq!(p.children.len(), 2);
        assert_eq!(p.children[0].name, "test.profile.ctx");
        assert_eq!(p.children[0].children[0].name, "test.profile.join");
        assert_eq!(p.children[1].name, "test.profile.where");
        assert_eq!(p.node_count(), 4);
        assert!(p.find("test.profile.join").is_some());
        assert!(p.find("nope").is_none());
        let rendered = p.render();
        assert!(rendered.contains("├─ test.profile.ctx"), "{rendered}");
        assert!(rendered.contains("│  └─ test.profile.join"), "{rendered}");
        assert!(rendered.contains("└─ test.profile.where"), "{rendered}");
        assert!(rendered.contains("rows=2"), "{rendered}");
        let json = p.to_json();
        assert!(json.contains("\"name\":\"test.profile.query\""));
        assert!(json.contains("\"children\":["));
    }

    #[test]
    fn forest_wraps_in_synthetic_root() {
        let ((), spans) = capture(|| {
            drop(span("test.profile.r1"));
            drop(span("test.profile.r2"));
        });
        let p = Profile::single(&spans);
        assert_eq!(p.name, "run");
        assert_eq!(p.children.len(), 2);
    }
}
