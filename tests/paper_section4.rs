//! Paper §4 — the deductive rule language: rule R1 / Fig. 4.3, the induced
//! generalization association (Figs. 4.1/4.2), rules R2–R5, and the
//! backward-chaining Query 4.1.

mod common;

use common::{assert_patterns, s};
use dood::core::ids::Oid;
use dood::core::value::Value;
use dood::rules::RuleEngine;
use dood::workload::figures::fig_3_1;
use dood::workload::university::{self, Size};

/// Rule R1 / Fig. 4.3: `Teacher_course(Teacher, Course)` derived through
/// Section. "A direct association is derived between the instances t1 and
/// c1 … because t1 and c1 are associated through s2."
#[test]
fn rule_r1_fig_4_3() {
    let (db, names) = fig_3_1();
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule(
            "R1",
            "if context Teacher * Section * Course then Teacher_course (Teacher, Course)",
        )
        .unwrap();
    let sd = engine.subdb("Teacher_course").unwrap();
    // Fig. 4.3b: derived links t1–c1, t2–c1, t2–c2; Section dropped.
    assert_eq!(sd.intension.width(), 2);
    assert!(sd.intension.has_edge(0, 1));
    assert_patterns(
        sd,
        vec![
            vec![s(names["t1"]), s(names["c1"])],
            vec![s(names["t2"]), s(names["c1"])],
            vec![s(names["t2"]), s(names["c2"])],
        ],
    );
    // The derived direct association is queryable even though the base
    // schema has no Teacher–Course association (closure property).
    let out = engine
        .query("context Teacher_course:Teacher * Teacher_course:Course select name, title display")
        .unwrap();
    assert_eq!(out.table.len(), 3);
}

/// §4.2: restricting inherited attributes in the THEN clause makes the
/// others inaccessible ("the attribute Name will not be accessible from the
/// class Teacher_course:Teacher").
#[test]
fn attribute_restriction_enforced_in_queries() {
    let (db, _) = fig_3_1();
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule(
            "R1",
            "if context Teacher * Section * Course \
             then Bad_tc (Teacher [section#], Course)",
        )
        .unwrap(); // parses…
    assert!(engine.subdb("Bad_tc").is_err()); // …but section# is not a Teacher attribute
    engine
        .add_rule(
            "R1b",
            "if context Teacher * Section * Course \
             then Teacher_course (Teacher [name], Course)",
        )
        .unwrap();
    // Accessible attribute works…
    assert!(engine
        .query("context Teacher_course:Teacher * Teacher_course:Course select Teacher[name]")
        .is_ok());
    // …odd one out: selecting an attribute outside the restriction fails.
    let err = engine
        .query("context Teacher_course:Teacher * Teacher_course:Course select Teacher[title]")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("title"), "unexpected error: {msg}");
}

/// Rules R2 + R3: `Suggest_offer` via grouped COUNT, then `Deps_need_res`
/// reading the derived subdatabase through the induced generalization
/// ("Suggest_offer:Course … inherits the aggregation link to the base class
/// Department, hence Department * Suggest_offer:Course is legal").
#[test]
fn rules_r2_r3_chain() {
    let (db, pop) = university::populate_with_handles(Size::medium(), 7);
    let mut engine = RuleEngine::new(db);
    // The paper's threshold is 39 students; the synthetic population is
    // smaller, so the threshold scales down — the mechanism is identical.
    engine
        .add_rule(
            "R2",
            "if context Department [name = 'CIS'] * Course * Section * Student \
             where count(Student by Course) > 10 \
             then Suggest_offer (Course)",
        )
        .unwrap();
    engine
        .add_rule(
            "R3",
            "if context Department * Suggest_offer:Course \
             then Deps_need_res (Department) \
             where count(Suggest_offer:Course by Department) > 2",
        )
        .unwrap();

    // Oracle for R2 computed directly against the store.
    let db = engine.db();
    let schema = db.schema();
    let course_cls = schema.class_by_name("Course").unwrap();
    let section_cls = schema.class_by_name("Section").unwrap();
    let student_cls = schema.class_by_name("Student").unwrap();
    let sc = schema.own_link_by_name(section_cls, "Course").unwrap();
    let enrolls = schema.own_link_by_name(student_cls, "Enrolls").unwrap();
    let cd = schema.own_link_by_name(course_cls, "Department").unwrap();
    let cis = pop.departments[0];
    let mut expected: Vec<Oid> = Vec::new();
    for c in db.extent(course_cls) {
        if db.neighbors(cd, c, true) != [cis] {
            continue;
        }
        let mut students: std::collections::BTreeSet<Oid> = Default::default();
        for &sec in db.neighbors(sc, c, false) {
            students.extend(db.neighbors(enrolls, sec, false).iter().copied());
        }
        if students.len() > 10 {
            expected.push(c);
        }
    }
    assert!(!expected.is_empty(), "workload must produce popular CIS courses");

    let sd = engine.subdb("Suggest_offer").unwrap();
    let actual: Vec<Oid> = sd.slot_extent(0).into_iter().collect();
    assert_eq!(actual, expected);

    // R3 reads R2's output (inference chain; closure property).
    let deps = engine.subdb("Deps_need_res").unwrap();
    let dep_count = deps.slot_extent(0).len();
    let expected_dep = usize::from(expected.len() > 2);
    assert_eq!(dep_count, expected_dep);
}

/// Rules R4 + R5 derive into the same subdatabase: "May_teach will contain
/// the union of the two sets of extensional patterns derived by the two
/// rules." (R5 is phrased on the TA perspective so both rules agree on the
/// derived class list — the union semantics require one intension.)
#[test]
fn rules_r4_r5_union() {
    let (db, _) = university::populate_with_handles(Size::medium(), 7);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule(
            "R2",
            "if context Department [name = 'CIS'] * Course * Section * Student \
             where count(Student by Course) > 10 then Suggest_offer (Course)",
        )
        .unwrap();
    engine
        .add_rule(
            "R4",
            "if context TA * Teacher * Section * Suggest_offer:Course \
             then May_teach (TA, Course)",
        )
        .unwrap();
    engine
        .add_rule(
            "R5",
            "if context TA * Grad * Transcript [grade <= 'B'] * Course [c# < 5000] \
             then May_teach (TA, Course)",
        )
        .unwrap();
    let may = engine.subdb("May_teach").unwrap().clone();

    // Each rule alone derives a subset; the union is their set union.
    let r4_only = {
        let rule = engine.rules().iter().find(|r| r.name == "R4").unwrap().clone();
        dood::rules::apply_rule(&rule, engine.db(), engine.registry()).unwrap()
    };
    let r5_only = {
        let rule = engine.rules().iter().find(|r| r.name == "R5").unwrap().clone();
        dood::rules::apply_rule(&rule, engine.db(), engine.registry()).unwrap()
    };
    let mut expected: std::collections::BTreeSet<_> =
        r4_only.patterns().cloned().collect();
    expected.extend(r5_only.patterns().cloned());
    let actual: std::collections::BTreeSet<_> = may.patterns().cloned().collect();
    assert_eq!(actual, expected);
    assert!(!may.is_empty(), "population should contain eligible TAs");
}

/// Query 4.1: the full backward-chaining cascade. "Since TA is referenced
/// in the query in the context of May_teach, rules R4 and R5 will be
/// triggered … But in order to derive May_teach, the subdatabase
/// Suggest_offer … must be derived. This causes rule R2 … to be triggered."
#[test]
fn query_4_1_backward_chain() {
    let (db, _) = university::populate_with_handles(Size::medium(), 7);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule(
            "R2",
            "if context Department [name = 'CIS'] * Course * Section * Student \
             where count(Student by Course) > 10 then Suggest_offer (Course)",
        )
        .unwrap();
    engine
        .add_rule(
            "R4",
            "if context TA * Teacher * Section * Suggest_offer:Course \
             then May_teach (TA, Course)",
        )
        .unwrap();
    engine
        .add_rule(
            "R5",
            "if context TA * Grad * Transcript [grade <= 'B'] * Course [c# < 5000] \
             then May_teach (TA, Course)",
        )
        .unwrap();
    // Nothing derived yet.
    assert!(engine.registry().is_empty());
    let out = engine
        .query(
            "context Faculty * Advising * May_teach:TA [GPA < 3.5] \
             select TA[name], Faculty[name] display",
        )
        .unwrap();
    // The cascade materialized both derived subdatabases.
    assert!(engine.registry().subdb("May_teach").is_some());
    assert!(engine.registry().subdb("Suggest_offer").is_some());
    assert_eq!(out.table.columns, vec!["TA.name", "Faculty.name"]);
    // Oracle: every returned TA is advised, has GPA < 3.5 and is in
    // May_teach's TA extent.
    let may_tas = engine.registry().subdb("May_teach").unwrap().slot_extent(0);
    let db = engine.db();
    for p in out.subdb.patterns() {
        let ta = p.get(2).unwrap();
        assert!(may_tas.contains(&ta));
        let gpa = db.attr(ta, "GPA").unwrap().as_f64().unwrap();
        assert!(gpa < 3.5);
    }
}

/// §4.1 / Fig. 4.2: the induced generalization lets classes of *different*
/// derived subdatabases join through their common ancestor's derived
/// association (`SD1:A * SD2:C`).
#[test]
fn induced_generalization_cross_subdb_join() {
    let (db, names) = fig_3_1();
    let mut engine = RuleEngine::new(db);
    // SD: the derived Teacher—Course association (like Fig. 4.1's SD).
    engine
        .add_rule("RSD", "if context Teacher * Section * Course then SD (Teacher, Course)")
        .unwrap();
    // SD1: teachers of SD named t1 or t2; SD2: courses of SD numbered ≥ 2000.
    engine
        .add_rule("RSD1", "if context SD:Teacher [name <= 't2'] then SD1 (Teacher)")
        .unwrap();
    engine
        .add_rule("RSD2", "if context SD:Course [c# >= 2000] then SD2 (Course)")
        .unwrap();
    let out = engine.query("context SD1:Teacher * SD2:Course").unwrap();
    // Join through SD's derived patterns: only (t2, c2) qualifies
    // (t1's course c1 has c# 1000).
    assert_patterns(&out.subdb, vec![vec![s(names["t2"]), s(names["c2"])]]);
}

/// §4: "the set of instances of a target class is a subset of the set of
/// instances of the source class from which it is derived" — and queries on
/// the base classes are unaffected by derivations.
#[test]
fn derived_extents_are_subsets() {
    let (db, _) = fig_3_1();
    let teacher_cls = db.schema().class_by_name("Teacher").unwrap();
    let base_teachers: Vec<Oid> = db.extent(teacher_cls).collect();
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("R1", "if context Teacher * Section * Course then TC (Teacher, Course)")
        .unwrap();
    let sd = engine.subdb("TC").unwrap();
    let derived: Vec<Oid> = sd.slot_extent(0).into_iter().collect();
    assert!(derived.iter().all(|o| base_teachers.contains(o)));
    assert!(derived.len() < base_teachers.len());
}

/// A derived subdatabase can itself be queried with further intra-class
/// conditions and attributes (uniform operability — the closure property's
/// point).
#[test]
fn derived_subdb_uniformly_operable() {
    let (db, names) = fig_3_1();
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("R1", "if context Teacher * Section * Course then TC (Teacher, Course)")
        .unwrap();
    let out = engine
        .query("context TC:Teacher * TC:Course [c# >= 2000] select name display")
        .unwrap();
    assert_patterns(&out.subdb, vec![vec![s(names["t2"]), s(names["c2"])]]);
    assert_eq!(out.table.rows[0][0], Value::str("t2"));
}
