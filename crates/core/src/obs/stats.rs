//! `obs::stats` — observed cardinality statistics feeding the cost-based
//! join planner (DESIGN.md §10).
//!
//! A process-global registry of exponentially-weighted moving averages,
//! keyed by stable strings describing *what* was measured rather than
//! *where* (e.g. `oql.fan.a3.f` for the forward fan-out of association 3,
//! `oql.sel.c2.9f31aa04` for the selectivity of one predicate shape on
//! class 2). Keys describe schema-level quantities, so observations made
//! by one query improve the plans of every later query touching the same
//! associations and predicates.
//!
//! Unlike [`super::metrics`], this registry is **always on**: it is an
//! engine input (plan choice), not an export surface. Recording happens
//! per join *stage* (not per row), so the steady-state cost is one mutex
//! lock and one hash probe per stage — negligible next to the join itself.
//! Stats only ever influence which join order is chosen, never which rows
//! are produced; the equivalence propcheck in `tests/plan.rs` pins that.

use crate::fxhash::FxHashMap;
use std::sync::{Mutex, OnceLock};

/// Smoothing factor: a new observation moves the average 25% of the way.
/// Heavy smoothing keeps one outlier delta-evaluation (tiny restricted
/// cardinalities) from wrecking the estimate for full evaluations.
const ALPHA: f64 = 0.25;

#[derive(Debug, Clone, Copy)]
struct Stat {
    ewma: f64,
    count: u64,
}

fn registry() -> &'static Mutex<FxHashMap<String, Stat>> {
    static REG: OnceLock<Mutex<FxHashMap<String, Stat>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(FxHashMap::default()))
}

/// Static priors: analysis-derived estimates (the `rules::absint`
/// abstract interpreter) consulted only when a key has **no** observation.
/// Kept separate from the EWMA registry so one real observation fully
/// replaces the prior instead of being averaged with it.
fn priors() -> &'static Mutex<FxHashMap<String, f64>> {
    static REG: OnceLock<Mutex<FxHashMap<String, f64>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(FxHashMap::default()))
}

/// Fold one observation into `key`'s moving average.
pub fn observe(key: &str, value: f64) {
    if !value.is_finite() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    match reg.get_mut(key) {
        Some(s) => {
            s.ewma += ALPHA * (value - s.ewma);
            s.count += 1;
        }
        None => {
            reg.insert(key.to_string(), Stat { ewma: value, count: 1 });
        }
    }
}

/// The current average for `key`, if any observation has been recorded.
pub fn get(key: &str) -> Option<f64> {
    registry().lock().unwrap().get(key).map(|s| s.ewma)
}

/// Overwrite `key`'s average (tests and ablations; the count resets to 1).
pub fn set(key: &str, value: f64) {
    registry().lock().unwrap().insert(key.to_string(), Stat { ewma: value, count: 1 });
}

/// Record a static prior for `key` (non-finite values are ignored). Priors
/// fill the cold-start gap: [`get_or_prior`] serves them only until the
/// first real observation of the key arrives.
pub fn set_prior(key: &str, value: f64) {
    if !value.is_finite() {
        return;
    }
    priors().lock().unwrap().insert(key.to_string(), value);
}

/// The static prior for `key`, if one was installed.
pub fn prior(key: &str) -> Option<f64> {
    priors().lock().unwrap().get(key).copied()
}

/// Observed average when any observation exists, else the static prior.
/// The planner's lookup path: observation ≻ prior ≻ caller fallback.
pub fn get_or_prior(key: &str) -> Option<f64> {
    get(key).or_else(|| prior(key))
}

/// Drop every recorded statistic and prior (plans fall back to
/// schema-derived estimates until new observations arrive). Golden-plan
/// tests call this to make the chosen orders independent of earlier test
/// activity.
pub fn clear() {
    registry().lock().unwrap().clear();
    priors().lock().unwrap().clear();
}

/// Drop only the observed statistics, keeping installed priors — the
/// cold-start ablation switch (warmed vs. static-prior plans).
pub fn clear_observations() {
    registry().lock().unwrap().clear();
}

/// Every recorded statistic as `(key, average, observations)`, sorted by
/// key — the readback surface for `doodprof` and the random-stats
/// propcheck.
pub fn snapshot() -> Vec<(String, f64, u64)> {
    let reg = registry().lock().unwrap();
    let mut out: Vec<(String, f64, u64)> =
        reg.iter().map(|(k, s)| (k.clone(), s.ewma, s.count)).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_and_snapshot_reads_back() {
        let key = "test.stats.ewma_converges";
        set(key, 10.0);
        for _ in 0..64 {
            observe(key, 20.0);
        }
        let v = get(key).unwrap();
        assert!((v - 20.0).abs() < 0.1, "ewma should converge: {v}");
        let snap = snapshot();
        let row = snap.iter().find(|(k, _, _)| k == key).unwrap();
        assert_eq!(row.2, 65);
    }

    #[test]
    fn priors_yield_to_observations() {
        let key = "test.stats.prior_yields";
        set_prior(key, 0.25);
        assert_eq!(get(key), None, "priors are not observations");
        assert_eq!(get_or_prior(key), Some(0.25));
        observe(key, 0.8);
        assert_eq!(get_or_prior(key), Some(0.8), "observation replaces prior");
        set_prior(key, f64::INFINITY);
        assert_eq!(prior(key), Some(0.25), "non-finite priors ignored");
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let key = "test.stats.non_finite";
        set(key, 5.0);
        observe(key, f64::NAN);
        observe(key, f64::INFINITY);
        assert_eq!(get(key), Some(5.0));
    }
}
