//! E2 — looping transitive closure (`Part ^*`, paper §5.2) vs Datalog
//! recursive reachability over CAD bills of materials.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dood_bench::{closure_datalog, closure_dood, closure_fixture};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_closure");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (depth, fanout) in [(4usize, 2usize), (8, 2), (12, 2), (6, 3)] {
        let f = closure_fixture(depth, fanout);
        let id = format!("d{depth}f{fanout}");
        g.bench_with_input(BenchmarkId::new("dood", &id), &f, |b, f| {
            b.iter(|| black_box(closure_dood(f)));
        });
        g.bench_with_input(BenchmarkId::new("datalog", &id), &f, |b, f| {
            b.iter(|| black_box(closure_datalog(f)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
