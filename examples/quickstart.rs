//! Quickstart: build the paper's university database (Fig. 2.1), look at
//! its S-diagram, run the paper's Query 3.1 and Query 3.2, and derive the
//! first rule's subdatabase.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dood::rules::RuleEngine;
use dood::workload::university::{self, Size};

fn main() {
    // 1. Schema: the S-diagram of Fig. 2.1.
    let schema = university::schema();
    println!("== University S-diagram (paper Fig. 2.1) ==\n{}", schema.render_text());

    // 2. A small, deterministic population.
    let db = university::populate(Size::small(), 42);
    println!(
        "Populated {} objects across {} classes.\n",
        db.object_count(),
        db.schema().e_classes().count()
    );

    let mut engine = RuleEngine::new(db);

    // 3. Query 3.1: "Display the names of the teachers who teach some
    //    sections and the section#'s of these sections."
    let out = engine
        .query("context Teacher * Section select name, section# display")
        .expect("query 3.1");
    println!("== Query 3.1: context Teacher * Section ==");
    println!("{}", out.op_results[0].1);

    // 4. Query 3.2 (adapted thresholds): departments offering 6000-level
    //    courses with current sections.
    let out = engine
        .query(
            "context Department * Course [c# >= 6000 and c# < 7000] * Section \
             select name, title, textbook print",
        )
        .expect("query 3.2");
    println!("== Query 3.2: 6000-level offerings ==");
    println!("{}", out.op_results[0].1);

    // 5. Rule R1: derive Teacher_course — teachers related directly to the
    //    courses they teach, through sections (paper §4.2 / Fig. 4.3).
    engine
        .add_rule(
            "R1",
            "if context Teacher * Section * Course then Teacher_course (Teacher, Course)",
        )
        .expect("rule R1");
    let sd = engine.subdb("Teacher_course").expect("derive Teacher_course");
    println!("== Derived subdatabase (rule R1) ==");
    println!("{sd}");

    // 6. The derived subdatabase is itself queryable (closure property).
    let out = engine
        .query(
            "context Teacher_course:Teacher * Teacher_course:Course \
             select Teacher[name], Course[title] display",
        )
        .expect("query over derived data");
    println!("== Query over the derived Teacher_course ==");
    println!("{}", out.op_results[0].1);
}
