//! E6 — brace (outer-pattern) evaluation overhead vs the plain association
//! operator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dood_bench::braces_pair;
use dood_core::subdb::SubdbRegistry;
use dood_oql::Oql;
use dood_workload::university;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_braces");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for factor in [1usize, 2, 4] {
        let db = university::populate(university::Size::scaled(factor), 6);
        let reg = SubdbRegistry::new();
        g.bench_with_input(BenchmarkId::new("plain", factor), &db, |b, db| {
            let oql = Oql::new();
            b.iter(|| {
                black_box(
                    oql.query(db, &reg, "context Teacher * Section * Course")
                        .unwrap()
                        .subdb
                        .len(),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("braced", factor), &db, |b, db| {
            let oql = Oql::new();
            b.iter(|| {
                black_box(
                    oql.query(db, &reg, "context {Teacher * Section} * Course")
                        .unwrap()
                        .subdb
                        .len(),
                )
            });
        });
        // Sanity outside the timed loop.
        let (p, br) = braces_pair(&db);
        assert!(br >= p);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
