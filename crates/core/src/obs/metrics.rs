//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metrics are process-global and registered on first use; handles are
//! `&'static` (leaked once per distinct name), so hot sites pay one
//! registry lookup per *call site execution* only while metrics are
//! enabled — instrumentation guards every lookup with
//! [`super::metrics_enabled`], a single relaxed atomic load when off.
//!
//! Naming scheme (DESIGN.md §8): dotted lowercase `layer.noun.verb`, e.g.
//! `oql.join.rows_out`, `store.index.probes`, `pool.chunk_ns`. Histograms
//! carry a `_ns` suffix when they record durations.
//!
//! Everything is integer-only — exporters never format floats (means are
//! reported as integer quotients), keeping the subsystem hermetic.

use super::json_escape;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of power-of-two histogram buckets: bucket `i` counts values in
/// `[2^i, 2^(i+1))` (bucket 0 covers `[0, 2)`), so 40 buckets span 1 ns to
/// ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    val: AtomicU64,
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.val.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.val.load(Ordering::Relaxed)
    }
}

/// A last-value / max-tracking gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    val: AtomicI64,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.val.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v`.
    pub fn set_max(&self, v: i64) {
        self.val.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.val.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket power-of-two histogram (thread-safe, integer-only).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// The bucket index for a value: `floor(log2(v))`, clamped.
    fn bucket_of(v: u64) -> usize {
        if v < 2 {
            0
        } else {
            (63 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, not a bucket floor; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The lower bound of the bucket containing the `pct`-th percentile
    /// observation (0 when empty). `pct` in 0..=100.
    pub fn percentile_floor(&self, pct: u64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (total * pct).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (HISTOGRAM_BUCKETS - 1)
    }

    /// Per-bucket counts as `(lower_bound, count)`, non-empty buckets only.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((if i == 0 { 0 } else { 1u64 << i }, c))
            })
            .collect()
    }
}

/// A registered metric (one of the three kinds).
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static R: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Lock the registry, recovering from poisoning (a kind-mismatch panic
/// under the lock must not take the whole registry down — the map itself
/// is never left mid-mutation).
fn reg_lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// The counter named `name`, registering it on first use.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    let mut r = reg_lock();
    match r
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
    {
        Metric::Counter(c) => c,
        _ => panic!("metric `{name}` is not a counter"),
    }
}

/// The gauge named `name`, registering it on first use.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut r = reg_lock();
    match r
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
    {
        Metric::Gauge(g) => g,
        _ => panic!("metric `{name}` is not a gauge"),
    }
}

/// The histogram named `name`, registering it on first use.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut r = reg_lock();
    match r
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::default())))
    {
        Metric::Histogram(h) => h,
        _ => panic!("metric `{name}` is not a histogram"),
    }
}

/// A point-in-time copy of one metric's value(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSnapshot {
    /// A counter's value.
    Counter {
        /// Metric name.
        name: String,
        /// Current value.
        value: u64,
    },
    /// A gauge's value.
    Gauge {
        /// Metric name.
        name: String,
        /// Current value.
        value: i64,
    },
    /// A histogram's summary.
    Histogram {
        /// Metric name.
        name: String,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: u64,
        /// Largest observation (exact).
        max: u64,
        /// `(lower_bound, count)` for non-empty buckets.
        buckets: Vec<(u64, u64)>,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. }
            | MetricSnapshot::Gauge { name, .. }
            | MetricSnapshot::Histogram { name, .. } => name,
        }
    }
}

/// Snapshot every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let r = reg_lock();
    r.iter()
        .map(|(name, m)| match m {
            Metric::Counter(c) => {
                MetricSnapshot::Counter { name: name.clone(), value: c.get() }
            }
            Metric::Gauge(g) => MetricSnapshot::Gauge { name: name.clone(), value: g.get() },
            Metric::Histogram(h) => MetricSnapshot::Histogram {
                name: name.clone(),
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                buckets: h.nonzero_buckets(),
            },
        })
        .collect()
}

/// Reset every registered metric to zero (test isolation; the registry
/// itself is kept).
pub fn reset_all() {
    let r = reg_lock();
    for m in r.values() {
        match m {
            Metric::Counter(c) => c.val.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.val.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => {
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
                h.max.store(0, Ordering::Relaxed);
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Render a snapshot as aligned plain text (one metric per line, keys in
/// sorted order; histograms report count, sum, integer mean, the p50/p95/
/// p99 bucket floors, and the exact max).
pub fn render_text(snaps: &[MetricSnapshot]) -> String {
    let mut snaps: Vec<&MetricSnapshot> = snaps.iter().collect();
    snaps.sort_by(|a, b| a.name().cmp(b.name()));
    let width = snaps.iter().map(|s| s.name().len()).max().unwrap_or(0);
    let mut out = String::new();
    for s in snaps {
        match s {
            MetricSnapshot::Counter { name, value } => {
                out.push_str(&format!("{name:width$}  {value}\n"));
            }
            MetricSnapshot::Gauge { name, value } => {
                out.push_str(&format!("{name:width$}  {value}\n"));
            }
            MetricSnapshot::Histogram { name, count, sum, max, buckets } => {
                let mean = if *count > 0 { sum / count } else { 0 };
                let (p50, p95, p99) = percentiles_from_buckets(buckets, *count);
                out.push_str(&format!(
                    "{name:width$}  count={count} sum={sum} mean={mean} \
                     p50>={p50} p95>={p95} p99>={p99} max={max}\n"
                ));
            }
        }
    }
    out
}

/// `(p50_floor, p95_floor, p99_floor)` from a `(lower_bound, count)`
/// bucket list.
pub fn percentiles_from_buckets(buckets: &[(u64, u64)], total: u64) -> (u64, u64, u64) {
    let floor = |pct: u64| -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = (total * pct).div_ceil(100).max(1);
        let mut seen = 0u64;
        for &(lo, c) in buckets {
            seen += c;
            if seen >= rank {
                return lo;
            }
        }
        buckets.last().map_or(0, |&(lo, _)| lo)
    };
    (floor(50), floor(95), floor(99))
}

/// Render a snapshot as JSON lines (one object per metric).
pub fn to_json_lines(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for s in snaps {
        match s {
            MetricSnapshot::Counter { name, value } => out.push_str(&format!(
                "{{\"metric\":\"{}\",\"kind\":\"counter\",\"value\":{value}}}\n",
                json_escape(name)
            )),
            MetricSnapshot::Gauge { name, value } => out.push_str(&format!(
                "{{\"metric\":\"{}\",\"kind\":\"gauge\",\"value\":{value}}}\n",
                json_escape(name)
            )),
            MetricSnapshot::Histogram { name, count, sum, max, buckets } => {
                let b: Vec<String> =
                    buckets.iter().map(|(lo, c)| format!("[{lo},{c}]")).collect();
                let (p50, p95, p99) = percentiles_from_buckets(buckets, *count);
                out.push_str(&format!(
                    "{{\"metric\":\"{}\",\"kind\":\"histogram\",\"count\":{count},\"sum\":{sum},\
                     \"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"max\":{max},\"buckets\":[{}]}}\n",
                    json_escape(name),
                    b.join(",")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that read counter values against the one that
    /// calls the global [`reset_all`].
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static L: Mutex<()> = Mutex::new(());
        L.lock().unwrap()
    }

    #[test]
    fn counter_and_gauge_basics() {
        let _g = test_lock();
        let c = counter("test.metrics.counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        let g = gauge("test.metrics.gauge");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn registry_returns_same_instance() {
        let a = counter("test.metrics.same") as *const Counter;
        let b = counter("test.metrics.same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        counter("test.metrics.kind_clash");
        gauge("test.metrics.kind_clash");
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let h = Histogram::default();
        for v in [1u64, 3, 3, 100, 100, 100, 100, 100, 5000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 1_005_507);
        assert_eq!(h.max(), 1_000_000);
        // p50 falls in the 100s bucket: [64,128).
        assert_eq!(h.percentile_floor(50), 64);
        assert!(h.percentile_floor(100) >= 524288);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 10);
        // p99 of 10 observations is the last one's bucket floor.
        let (p50, p95, p99) = percentiles_from_buckets(&buckets, h.count());
        assert_eq!(p50, 64);
        assert!(p99 >= p95 && p95 >= p50);
        assert_eq!(p99, 524288);
    }

    #[test]
    fn snapshot_and_exporters() {
        counter("test.metrics.snap").add(3);
        let h = histogram("test.metrics.snap_hist");
        h.record(10);
        let snaps = snapshot();
        let text = render_text(&snaps);
        assert!(text.contains("test.metrics.snap"));
        assert!(text.contains("count=") && text.contains("p95>="));
        assert!(text.contains("p99>=") && text.contains("max="));
        // Text exporter lines come out in sorted key order.
        let keys: Vec<&str> =
            text.lines().filter_map(|l| l.split_whitespace().next()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "metric text keys must be sorted");
        let json = to_json_lines(&snaps);
        let line = json
            .lines()
            .find(|l| l.contains("test.metrics.snap_hist"))
            .unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\":\"histogram\""));
        assert!(line.contains("\"p99\":") && line.contains("\"max\":"));
    }

    #[test]
    fn reset_zeroes_values() {
        let _g = test_lock();
        let c = counter("test.metrics.reset");
        c.add(9);
        reset_all();
        assert_eq!(c.get(), 0);
    }
}
