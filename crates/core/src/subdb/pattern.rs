//! Extensional association patterns.
//!
//! "An extensional pattern can be represented as a tuple of OIDs" (paper
//! §3.1); a component may be Null (the pattern `(t3, s4)` "whose Course
//! component is Null"). The **extensional pattern type** is "the common
//! template that is shared by several extensional patterns", denoted by a
//! tuple of class names; we represent a type as the bitmask of non-null
//! slots of the owning intension.

use crate::ids::Oid;
use std::fmt;

/// A pattern type: bitmask over the slots of an intension (bit i set ⇔ slot
/// i is non-null). Limits an intension to 64 slots, asserted at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternType(pub u64);

impl PatternType {
    /// The empty type (all components Null).
    pub const EMPTY: PatternType = PatternType(0);

    /// Whether `self` is a strict sub-type of `other` (fewer non-null
    /// slots, all contained in `other`'s).
    #[inline]
    pub fn is_strict_subtype_of(self, other: PatternType) -> bool {
        self != other && (self.0 & other.0) == self.0
    }

    /// Whether slot `i` is non-null in this type.
    #[inline]
    pub fn has(self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// Number of non-null slots.
    #[inline]
    pub fn arity(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterate the slot indices present in this type, ascending.
    pub fn slots(self) -> impl Iterator<Item = usize> {
        let bits = self.0;
        (0..64usize).filter(move |&i| (bits >> i) & 1 == 1)
    }
}

/// An extensional association pattern: one `Option<Oid>` per slot of the
/// owning intension.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtPattern {
    components: Box<[Option<Oid>]>,
}

impl ExtPattern {
    /// Build from components. Panics if more than 64 slots.
    pub fn new(components: impl Into<Box<[Option<Oid>]>>) -> Self {
        let components = components.into();
        assert!(components.len() <= 64, "intension limited to 64 slots");
        Self { components }
    }

    /// An all-null pattern of the given width.
    pub fn nulls(width: usize) -> Self {
        Self::new(vec![None; width])
    }

    /// Convenience: build from raw OIDs (all non-null).
    pub fn full(oids: impl IntoIterator<Item = Oid>) -> Self {
        Self::new(oids.into_iter().map(Some).collect::<Vec<_>>())
    }

    /// Number of slots.
    #[inline]
    pub fn width(&self) -> usize {
        self.components.len()
    }

    /// Component at slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Oid> {
        self.components[i]
    }

    /// All components.
    #[inline]
    pub fn components(&self) -> &[Option<Oid>] {
        &self.components
    }

    /// Set slot `i` (builder-style use during evaluation).
    pub fn set(&mut self, i: usize, oid: Option<Oid>) {
        self.components[i] = oid;
    }

    /// The pattern's type: the bitmask of non-null slots.
    pub fn pattern_type(&self) -> PatternType {
        let mut bits = 0u64;
        for (i, c) in self.components.iter().enumerate() {
            if c.is_some() {
                bits |= 1 << i;
            }
        }
        PatternType(bits)
    }

    /// Whether this pattern is a strict *part* of `other`: `other` agrees on
    /// every non-null component of `self` and has strictly more non-null
    /// components. The paper drops such patterns: "an extensional pattern of
    /// a certain specified type will not appear independently in the result
    /// if it is part of a larger extensional pattern" (§5.1).
    pub fn is_part_of(&self, other: &ExtPattern) -> bool {
        debug_assert_eq!(self.width(), other.width());
        let st = self.pattern_type();
        let ot = other.pattern_type();
        if !st.is_strict_subtype_of(ot) {
            return false;
        }
        st.slots().all(|i| self.components[i] == other.components[i])
    }

    /// Project onto the given slots (producing a narrower pattern).
    pub fn project(&self, slots: &[usize]) -> ExtPattern {
        ExtPattern::new(slots.iter().map(|&i| self.components[i]).collect::<Vec<_>>())
    }

    /// Widen to `width` slots, placing this pattern's components at
    /// `positions` (parallel to `self.components()`).
    pub fn widen(&self, width: usize, positions: &[usize]) -> ExtPattern {
        debug_assert_eq!(positions.len(), self.width());
        let mut out = vec![None; width];
        for (src, &dst) in positions.iter().enumerate() {
            out[dst] = self.components[src];
        }
        ExtPattern::new(out)
    }
}

impl fmt::Display for ExtPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match c {
                Some(oid) => write!(f, "{oid}")?,
                None => f.write_str("Null")?,
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[Option<u64>]) -> ExtPattern {
        ExtPattern::new(v.iter().map(|o| o.map(Oid)).collect::<Vec<_>>())
    }

    #[test]
    fn pattern_type_bits() {
        let pat = p(&[Some(1), None, Some(3)]);
        let t = pat.pattern_type();
        assert!(t.has(0) && !t.has(1) && t.has(2));
        assert_eq!(t.arity(), 2);
        assert_eq!(t.slots().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn subtype_relation() {
        let a = PatternType(0b011);
        let b = PatternType(0b111);
        assert!(a.is_strict_subtype_of(b));
        assert!(!b.is_strict_subtype_of(a));
        assert!(!a.is_strict_subtype_of(a));
        assert!(!PatternType(0b101).is_strict_subtype_of(0b011.into()));
    }

    #[test]
    fn part_of_requires_agreement() {
        // Paper §5.1: (b5, c5) is part of (a1, b5, c5, d5).
        let small = p(&[None, Some(5), Some(6), None]);
        let big = p(&[Some(1), Some(5), Some(6), Some(7)]);
        assert!(small.is_part_of(&big));
        // Same shape, different OIDs: not a part.
        let other = p(&[Some(1), Some(5), Some(99), Some(7)]);
        assert!(!small.is_part_of(&other));
        // A pattern is not part of itself.
        assert!(!big.is_part_of(&big));
    }

    #[test]
    fn project_and_widen_round_trip() {
        let pat = p(&[Some(1), Some(2), Some(3)]);
        let narrow = pat.project(&[0, 2]);
        assert_eq!(narrow, p(&[Some(1), Some(3)]));
        let wide = narrow.widen(3, &[0, 2]);
        assert_eq!(wide, p(&[Some(1), None, Some(3)]));
    }

    #[test]
    fn display_with_nulls() {
        let pat = p(&[Some(3), None]);
        assert_eq!(pat.to_string(), "(o3, Null)");
    }

    #[test]
    fn full_and_nulls_constructors() {
        assert_eq!(ExtPattern::full([Oid(1), Oid(2)]).pattern_type().arity(), 2);
        assert_eq!(ExtPattern::nulls(3).pattern_type(), PatternType::EMPTY);
    }
}

impl From<u64> for PatternType {
    fn from(bits: u64) -> Self {
        PatternType(bits)
    }
}
