//! Semi-naive incremental forward maintenance (DESIGN.md §9).
//!
//! The paper's forward chaining "runs the relevant deductive rules to
//! maintain the consistency between the derived subdatabase and the
//! original database" but does not prescribe *how*. This module implements
//! event-log-driven delta maintenance: given the set of *dirty* objects
//! touched by an update batch (closed over perspective/identity links),
//! every cached context pattern either
//!
//! 1. contains no dirty object — it cannot have changed and is kept; or
//! 2. contains a dirty object — it is dropped, and every pattern with at
//!    least one delta-bound slot is re-derived by the semi-naive restricted
//!    join [`Evaluator::eval_delta`].
//!
//! Deletion is handled by *derivation counts*: the target is the projection
//! of the post-WHERE context, so each target pattern carries the number of
//! context patterns deriving it; a target pattern dies exactly when its
//! count reaches zero. Aggregate WHERE conditions are not per-pattern-local
//! (one pattern joining a group can flip the verdict of every other member)
//! so the WHERE clause is split at the first aggregate: the *prefix* of
//! plain comparisons has cacheable per-pattern verdicts, the *suffix* is
//! re-applied to the whole refreshed set on every delta. Cyclic (closure)
//! contexts carry the fixpoint's successor-relation provenance
//! ([`Evaluator::eval_closure_state`]) in the cache: a delta recomputes the
//! successor lists of the affected slot-0 nodes only, extends the frontier
//! from newly reachable nodes, prunes unsupported ones, and re-runs the
//! chain DFS for exactly the roots whose chains can have changed
//! ([`MaintainPlan::DeltaClosure`]). Only non-closure family targets still
//! fall back to full re-derivation.

use crate::ast::{Rule, TargetItem};
use crate::derive::{project_targets, target_slots};
use crate::error::RuleError;
use dood_core::fxhash::{FxHashMap, FxHashSet};
use dood_core::ids::Oid;
use dood_core::obs;
use dood_core::subdb::{ExtPattern, Subdatabase, SubdbRegistry};
use dood_oql::ast::WhereCond;
use dood_oql::eval::Evaluator;
use dood_oql::plan::CompiledContext;
use dood_oql::resolve::{resolve_context, ResolvedContext};
use dood_oql::wherec::apply_where;
use dood_store::Database;
use std::collections::BTreeSet;
use std::sync::Arc;

/// How a rule can be maintained under updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainPlan {
    /// No aggregates, no closure: clean patterns keep their cached WHERE
    /// verdicts and the target is rebuilt from derivation counts.
    DeltaLocal,
    /// Aggregate WHERE conditions present: the context delta is still
    /// semi-naive, but the aggregate suffix re-applies to the whole
    /// refreshed set (group membership is not pattern-local).
    DeltaReWhere,
    /// Cyclic (closure) context: the cached successor-relation provenance
    /// is patched around the dirty objects and only the chains of affected
    /// roots are re-derived (DESIGN.md §11).
    DeltaClosure,
    /// Family target over a non-closure context: re-derive in full.
    Recompute,
}

/// Whether the target can be maintained by derivation counts (no aggregate
/// WHERE condition whose verdict could flip without a post-set change).
fn counting_target(rule: &Rule) -> bool {
    !rule.where_.iter().any(|w| matches!(w, WhereCond::Agg { .. }))
}

/// Classify a rule for incremental maintenance.
pub fn plan_for(rule: &Rule) -> MaintainPlan {
    if rule.context.closure.is_some() {
        return MaintainPlan::DeltaClosure;
    }
    if rule.targets.iter().any(|t| matches!(t, TargetItem::Family { .. })) {
        return MaintainPlan::Recompute;
    }
    if counting_target(rule) {
        MaintainPlan::DeltaLocal
    } else {
        MaintainPlan::DeltaReWhere
    }
}

/// Whether delta maintenance is sound for this rule (anything but a full
/// recompute).
pub fn supports_incremental(rule: &Rule) -> bool {
    plan_for(rule) != MaintainPlan::Recompute
}

/// Expand an update batch's touched objects over the identity links: a
/// pattern slot may hold a different perspective of the touched object.
/// Deleted oids are *kept* — they invalidate cached patterns referencing
/// them — but can never re-bind a slot ([`Evaluator::restrict_slot`] and
/// [`Evaluator::eval_delta`] drop non-live oids).
pub fn dirty_closure(db: &Database, touched: impl IntoIterator<Item = Oid>) -> BTreeSet<Oid> {
    // Deleted objects have no closure but stay dirty (they seed the set).
    db.perspective_closure_set(touched)
}

/// Split a WHERE clause at the first aggregate condition. `apply_where`
/// applies conditions in written order and aggregates group over the
/// currently-filtered set, so the prefix/suffix application order is
/// exactly the original order.
fn split_where(conds: &[WhereCond]) -> (&[WhereCond], &[WhereCond]) {
    let cut = conds
        .iter()
        .position(|w| matches!(w, WhereCond::Agg { .. }))
        .unwrap_or(conds.len());
    conds.split_at(cut)
}

/// The cached fixpoint provenance of a closure rule: the successor
/// relation the chains are a function of, plus the support structure that
/// localizes deletion. `succ` holds every node the fixpoint expanded;
/// `pred` is its exact inverse; a node is *supported* while some successor
/// list still reaches it or it seeds chains itself (root). Chain-length
/// counts make the result width an O(1) question on every delta.
#[derive(Debug, Clone)]
struct ClosureCache {
    succ: FxHashMap<Oid, Vec<Oid>>,
    pred: FxHashMap<Oid, Vec<Oid>>,
    /// Sorted slot-0 candidates as of `at_seq`.
    roots: Vec<Oid>,
    /// The cached result's intension width (longest chain).
    width: usize,
    /// Chains per length; the max live key is the width.
    len_counts: FxHashMap<usize, u32>,
}

impl ClosureCache {
    fn new(state: dood_oql::eval::ClosureState, sd: &Subdatabase) -> Self {
        let mut pred: FxHashMap<Oid, Vec<Oid>> = FxHashMap::default();
        for (&n, list) in &state.succ {
            for &s in list {
                pred.entry(s).or_default().push(n);
            }
        }
        for v in pred.values_mut() {
            v.sort_unstable();
        }
        let mut roots = state.roots;
        roots.sort_unstable();
        let mut len_counts: FxHashMap<usize, u32> = FxHashMap::default();
        for p in sd.patterns() {
            *len_counts.entry(chain_len(p)).or_insert(0) += 1;
        }
        ClosureCache { succ: state.succ, pred, roots, width: state.width, len_counts }
    }

    fn is_root(&self, o: Oid) -> bool {
        self.roots.binary_search(&o).is_ok()
    }

    /// Supported = still derivable: some predecessor's list reaches it, or
    /// it is a root.
    fn supported(&self, o: Oid) -> bool {
        self.pred.get(&o).is_some_and(|v| !v.is_empty()) || self.is_root(o)
    }

    fn pred_insert(&mut self, node: Oid, from: Oid) {
        let v = self.pred.entry(node).or_default();
        if let Err(i) = v.binary_search(&from) {
            v.insert(i, from);
        }
    }

    /// Remove one support edge; returns whether `node` just lost its last
    /// predecessor (a GC candidate unless it is a root).
    fn pred_remove(&mut self, node: Oid, from: Oid) -> bool {
        if let Some(v) = self.pred.get_mut(&node) {
            if let Ok(i) = v.binary_search(&from) {
                v.remove(i);
                return v.is_empty();
            }
        }
        false
    }

    /// Install a recomputed successor list: diff against the cached one,
    /// patching `pred` edge by edge. Nodes that just became reachable go to
    /// `frontier`, nodes that may have lost their last support to
    /// `drained`, and `seeds` records every node whose list changed (the
    /// reverse-reachability seeds for the chain re-derivation).
    fn apply_list(
        &mut self,
        node: Oid,
        new: Vec<Oid>,
        seeds: &mut Vec<Oid>,
        frontier: &mut Vec<Oid>,
        drained: &mut Vec<Oid>,
    ) {
        let (old, known) = match self.succ.get(&node) {
            Some(v) => (v.clone(), true),
            None => (Vec::new(), false),
        };
        if known && old == new {
            return;
        }
        let (mut i, mut j) = (0, 0);
        while i < old.len() || j < new.len() {
            match (old.get(i), new.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(&a), b) if b.is_none_or(|&b| a < b) => {
                    if self.pred_remove(a, node) {
                        drained.push(a);
                    }
                    i += 1;
                }
                (_, Some(&b)) => {
                    self.pred_insert(b, node);
                    if !self.succ.contains_key(&b) {
                        frontier.push(b);
                    }
                    j += 1;
                }
                _ => unreachable!("loop condition"),
            }
        }
        self.succ.insert(node, new);
        seeds.push(node);
    }
}

/// Bound components of a chain pattern (chains are prefix-packed: `Some`
/// components first, `None` padding after).
fn chain_len(p: &ExtPattern) -> usize {
    p.components().iter().flatten().count()
}

/// The per-rule state carried between maintenance steps.
#[derive(Debug, Clone)]
pub struct RuleCache {
    /// The IF-context before any WHERE condition (post-subsumption).
    pub ctx_pre: Subdatabase,
    /// The context after the WHERE *prefix* (plain comparisons before the
    /// first aggregate). Per-pattern verdicts here are stable for clean
    /// patterns.
    post: Subdatabase,
    /// Derivation counts: target projection → number of post-context
    /// patterns deriving it ([`MaintainPlan::DeltaLocal`] only).
    counts: FxHashMap<ExtPattern, u32>,
    /// The projected target as of `at_seq`.
    pub target: Subdatabase,
    /// Event-log sequence number the cache reflects. A delta application
    /// is sound iff every event after `at_seq` is covered by the dirty set.
    pub at_seq: u64,
    /// The rule's resolved context, computed once at seeding. Resolution
    /// depends on the schema and the sources' *intensions* only — both
    /// fixed for the lifetime of a rule program — so delta steps reuse it.
    resolved: ResolvedContext,
    /// The compiled join pipeline (DESIGN.md §10), captured at seeding:
    /// delta steps skip predicate compilation and plan ordering and only
    /// re-anchor per restricted slot.
    plan: Arc<CompiledContext>,
    /// Fixpoint provenance for [`MaintainPlan::DeltaClosure`] rules.
    closure: Option<ClosureCache>,
}

impl RuleCache {
    /// Whether the plan-drift watchdog flagged this cache's compiled plan
    /// during execution (observed fan-out/selectivity left the
    /// `DOOD_DRIFT_BAND` band around the cost model's estimates). A flagged
    /// cache is re-seeded — and thereby re-planned against the corrected
    /// statistics — on its next maintenance step instead of delta-applied.
    pub fn needs_replan(&self) -> bool {
        self.plan.drift.flagged()
    }
}

/// Tally derivation counts: how many post-context patterns project onto
/// each (non-empty) target pattern.
fn tally(post: &Subdatabase, slots: &[usize]) -> FxHashMap<ExtPattern, u32> {
    let mut counts: FxHashMap<ExtPattern, u32> = FxHashMap::default();
    for p in post.patterns() {
        let key = p.project(slots);
        if key.pattern_type().arity() == 0 {
            continue;
        }
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

/// Derive a rule from scratch and build its maintenance cache. Span and
/// metric output matches [`crate::derive::apply_rule`] (one `rules.rule`
/// span with `ctx_rows`/`target_rows`).
pub fn seed_cache(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
) -> Result<RuleCache, RuleError> {
    let mut sp = obs::trace::span("rules.rule");
    sp.label(|| rule.name.clone());
    if obs::metrics_enabled() {
        obs::metrics::counter("rules.rule.applications").inc();
    }
    let resolved =
        resolve_context(&rule.context, db.schema(), registry).map_err(RuleError::Query)?;
    let ev = Evaluator::new(&resolved, db, registry).map_err(RuleError::Query)?;
    let plan = ev.plan_handle();
    if let Some(a) = obs::account::active() {
        a.set_plan(plan.describe());
    }
    let maintain = plan_for(rule);
    let (ctx_pre, closure) = if maintain == MaintainPlan::DeltaClosure {
        // Closure rules evaluate through the compiled kernel so the cache
        // captures the fixpoint's successor-relation provenance.
        let (sd, state) = ev.eval_closure_state("if-context");
        let cc = ClosureCache::new(state, &sd);
        (sd, Some(cc))
    } else {
        (ev.eval("if-context"), None)
    };
    let (prefix, suffix) = split_where(&rule.where_);
    let mut post = ctx_pre.clone();
    apply_where(&mut post, prefix, db).map_err(RuleError::Query)?;
    let mut full = post.clone();
    apply_where(&mut full, suffix, db).map_err(RuleError::Query)?;
    sp.attr("ctx_rows", full.len() as i64);
    let target = project_targets(rule, &full, db)?;
    sp.attr("target_rows", target.len() as i64);
    let counts = if maintain != MaintainPlan::Recompute && counting_target(rule) {
        tally(&post, &target_slots(rule, &post.intension)?)
    } else {
        FxHashMap::default()
    };
    Ok(RuleCache { ctx_pre, post, counts, target, at_seq: db.seq(), resolved, plan, closure })
}

/// The exact target-pattern edits one delta step performed. The engine
/// replays them onto the registered copy of the target subdatabase in
/// O(|edits|) instead of cloning the whole cached target, and their
/// components are the content delta fed to downstream rules' dirty sets.
#[derive(Debug, Default)]
pub struct DeltaOutcome {
    /// Target patterns added by this step.
    pub inserted: Vec<ExtPattern>,
    /// Target patterns removed by this step.
    pub removed: Vec<ExtPattern>,
}

impl DeltaOutcome {
    /// Whether the target changed at all.
    pub fn changed(&self) -> bool {
        !self.inserted.is_empty() || !self.removed.is_empty()
    }

    /// The distinct oids appearing in the edits — the downstream dirty
    /// contribution of this step.
    pub fn components(&self) -> BTreeSet<Oid> {
        let mut out = BTreeSet::new();
        for p in self.inserted.iter().chain(&self.removed) {
            out.extend(p.components().iter().flatten().copied());
        }
        out
    }
}

/// Whether a pattern has any unbound slot. Only partial patterns can take
/// part in strict subsumption (`is_part_of` requires a strict pattern-type
/// subtype, so two fully-bound patterns relate only by equality); scans
/// that look for subsumers or subsumees stay proportional to the
/// usually-empty partial subset.
fn is_partial(p: &ExtPattern) -> bool {
    p.components().iter().any(|c| c.is_none())
}

/// Symmetric difference of two pattern sets as (in `next` only, in `prev`
/// only) — one merge pass over the lexicographic iterators.
fn sym_diff(prev: &Subdatabase, next: &Subdatabase) -> (Vec<ExtPattern>, Vec<ExtPattern>) {
    let mut inserted = Vec::new();
    let mut removed = Vec::new();
    let mut a = prev.patterns().peekable();
    let mut b = next.patterns().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => match x.cmp(y) {
                std::cmp::Ordering::Less => {
                    removed.push(x.clone());
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    inserted.push(y.clone());
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    a.next();
                    b.next();
                }
            },
            (Some(&x), None) => {
                removed.push(x.clone());
                a.next();
            }
            (None, Some(&y)) => {
                inserted.push(y.clone());
                b.next();
            }
            (None, None) => break,
        }
    }
    (inserted, removed)
}

/// Apply one delta step **in place**: refresh the cache (context, WHERE
/// verdicts, derivation counts, and target) given the perspective-closed
/// dirty set covering every event since `cache.at_seq`, and return the
/// exact target edits. The whole step is O(dirty-touched patterns), not
/// O(context): clean patterns are never copied, re-checked, or re-counted.
/// The caller must ensure `plan_for(rule) != Recompute` and that every
/// change to the rule's derived sources since `at_seq` is reflected in
/// `dirty`.
pub fn delta_apply(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
    cache: &mut RuleCache,
    dirty: &BTreeSet<Oid>,
) -> Result<DeltaOutcome, RuleError> {
    let plan = plan_for(rule);
    debug_assert!(plan != MaintainPlan::Recompute, "caller must gate on supports_incremental");
    let mut sp = obs::trace::span("rules.rule");
    sp.label(|| rule.name.clone());
    sp.attr("delta", 1);
    if obs::metrics_enabled() {
        obs::metrics::counter("rules.rule.delta_applications").inc();
    }
    let out = if plan == MaintainPlan::DeltaClosure {
        delta_apply_closure(rule, db, registry, cache, dirty)?
    } else {
        delta_apply_flat(rule, db, registry, cache, dirty, plan)?
    };
    cache.at_seq = db.seq();
    sp.attr("ctx_rows", cache.post.len() as i64);
    sp.attr("target_rows", cache.target.len() as i64);
    Ok(out)
}

/// The non-closure delta step: semi-naive restricted re-join around the
/// dirty patterns (stages 1–2), then the shared WHERE/target refresh.
fn delta_apply_flat(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
    cache: &mut RuleCache,
    dirty: &BTreeSet<Oid>,
    plan: MaintainPlan,
) -> Result<DeltaOutcome, RuleError> {
    // 1. Drop dirty-bound cached patterns; expand the re-binding set with
    //    every component of a dropped pattern. A shorter pattern
    //    resurfacing because its subsumer died has all its components
    //    inside that subsumer, so the expansion guarantees it is
    //    re-derived. The same pass collects the retained *partial*
    //    patterns: only those can take part in strict subsumption (two
    //    fully-bound patterns of one intension relate only by equality),
    //    so the merge below scans this usually-empty list instead of the
    //    whole context.
    let mut rebind: BTreeSet<Oid> = dirty.clone();
    let mut dropped: Vec<ExtPattern> = Vec::new();
    let mut partials: Vec<ExtPattern> = Vec::new();
    if cache.ctx_pre.intension.width() == 2
        && cache.resolved.spans.as_slice() == [(0usize, 2usize)]
    {
        // Binary single-span contexts (the paper's common association-pair
        // shape) hold only fully-bound rows, so the access index's counted
        // (0,1) adjacency *is* the pattern set: walk the dirty oids'
        // neighbor lists — O(|dirty| + |dropped|) — instead of scanning
        // the whole context. Partial rows cannot exist here, so `partials`
        // stays empty.
        if let Some((adj, _)) = cache.ctx_pre.index().pair_adj(0, 1) {
            for &o in dirty {
                for &n in adj.neighbors(o, true) {
                    dropped.push(ExtPattern::new(vec![Some(o), Some(n)]));
                }
                for &n in adj.neighbors(o, false) {
                    // A pattern with both ends dirty was already collected
                    // from the dirty slot-0 end above.
                    if !dirty.contains(&n) {
                        dropped.push(ExtPattern::new(vec![Some(n), Some(o)]));
                    }
                }
            }
        }
        for p in &dropped {
            rebind.extend(p.components().iter().flatten().copied());
        }
    } else {
        let dirty_hash: FxHashSet<Oid> = dirty.iter().copied().collect();
        let is_dirty =
            |p: &ExtPattern| p.components().iter().flatten().any(|o| dirty_hash.contains(o));
        for p in cache.ctx_pre.patterns() {
            if is_dirty(p) {
                rebind.extend(p.components().iter().flatten().copied());
                dropped.push(p.clone());
            } else if is_partial(p) {
                partials.push(p.clone());
            }
        }
    }
    for p in &dropped {
        cache.ctx_pre.remove(p);
    }

    // 2. Semi-naive delta: every valid pattern with a delta-bound slot,
    //    merged into the retained context under subsumption. A delta row
    //    equal to (or part of) a retained clean pattern is redundant; a
    //    retained pattern that a delta row strictly covers is dropped.
    let mut ev = Evaluator::with_compiled(&cache.resolved, db, registry, Arc::clone(&cache.plan))
        .map_err(RuleError::Query)?;
    let delta = ev.eval_delta(&cache.ctx_pre.name, &rebind);
    let mut added: Vec<ExtPattern> = Vec::new();
    for r in &delta {
        if cache.ctx_pre.contains(r) {
            continue;
        }
        let r_partial = is_partial(r);
        // A partial row may hide under *any* retained pattern (full scan;
        // only brace contexts produce partial rows). A full row cannot be
        // a strict part of anything.
        if r_partial && cache.ctx_pre.patterns().any(|q| r.is_part_of(q)) {
            continue;
        }
        // Retained patterns strictly covered by `r` are necessarily
        // partial, so only the partial list is scanned.
        let shadowed: Vec<ExtPattern> =
            partials.iter().filter(|q| q.is_part_of(r)).cloned().collect();
        for q in shadowed {
            cache.ctx_pre.remove(&q);
            if let Some(i) = partials.iter().position(|a| *a == q) {
                partials.swap_remove(i);
            }
            if let Some(i) = added.iter().position(|a| *a == q) {
                added.swap_remove(i);
            } else {
                dropped.push(q);
            }
        }
        cache.ctx_pre.insert(r.clone());
        if r_partial {
            partials.push(r.clone());
        }
        added.push(r.clone());
    }

    refresh_post_and_target(rule, db, cache, plan == MaintainPlan::DeltaLocal, &dropped, &added)
}

/// Stages 3–4, shared by the flat and closure delta paths: refresh the
/// cached WHERE-prefix verdicts for the `dropped`/`added` context edits,
/// then the target — by derivation counts when `counting`, by re-applying
/// the aggregate suffix otherwise.
fn refresh_post_and_target(
    rule: &Rule,
    db: &Database,
    cache: &mut RuleCache,
    counting: bool,
    dropped: &[ExtPattern],
    added: &[ExtPattern],
) -> Result<DeltaOutcome, RuleError> {
    // 3. WHERE prefix: clean patterns keep their cached verdict (their
    //    attributes are untouched); only the added rows are checked.
    let (prefix, suffix) = split_where(&rule.where_);
    let mut removed_post: Vec<ExtPattern> = Vec::new();
    for p in dropped {
        if cache.post.remove(p) {
            removed_post.push(p.clone());
        }
    }
    let mut added_post: Vec<ExtPattern> = Vec::new();
    if !added.is_empty() {
        if prefix.is_empty() {
            // No prefix conditions: every added row passes.
            for p in added {
                cache.post.insert(p.clone());
                added_post.push(p.clone());
            }
        } else {
            let mut check =
                Subdatabase::new(cache.post.name.clone(), cache.post.intension.clone());
            for p in added {
                check.insert(p.clone());
            }
            apply_where(&mut check, prefix, db).map_err(RuleError::Query)?;
            for p in check.patterns() {
                cache.post.insert(p.clone());
                added_post.push(p.clone());
            }
        }
    }

    // 4. Target.
    if counting {
        delta_local_target(rule, cache, &removed_post, &added_post)
    } else {
        // Aggregate verdicts can flip without any post-set change (an
        // attribute update inside a group), so the suffix and the
        // projection always re-run over the refreshed set.
        let mut full = cache.post.clone();
        apply_where(&mut full, suffix, db).map_err(RuleError::Query)?;
        let next = project_targets(rule, &full, db)?;
        let (inserted, removed) = sym_diff(&cache.target, &next);
        cache.target = next;
        Ok(DeltaOutcome { inserted, removed })
    }
}

/// The closure delta step (DESIGN.md §11). The cached chains are a pure
/// function of (successor relation, root set), so the step maintains those
/// two and re-derives only the chains that can have changed:
///
/// 1. *Roots*: only dirty objects can change root status.
/// 2. *Successor lists*: [`Evaluator::closure_affected`] names every
///    slot-0 node whose list may differ (backward prefix joins from the
///    dirty objects at each chain position, plus reverse-cycle
///    predecessors of dirty slot-0 objects); the lists of those that were
///    part of the fixpoint (or just became roots) are recomputed in one
///    batched join, diffed edge-by-edge into the support structure.
/// 3. *Frontier*: successors that just became reachable extend the
///    fixpoint exactly as in the cold kernel, one delta round at a time.
/// 4. *GC*: nodes whose last support died (no predecessor list reaches
///    them, not a root) leave the provenance, cascading.
/// 5. *Re-derivation*: a chain changes only if some node on it changed
///    its list, and the chain's prefix up to the first such node consists
///    of unchanged edges — so reverse reachability over the *updated*
///    predecessor map from the changed nodes, intersected with the root
///    set (plus added/dropped roots), is exactly the set of roots whose
///    chains must be re-run. Their old chains are dropped, the DFS re-runs
///    from them alone, and the edits flow through the shared WHERE/target
///    refresh. Retained chains touching a dirty object re-check their
///    WHERE-prefix verdict (attributes may have flipped).
///
/// If the longest chain length changed, the result intension changes width
/// and every cached pattern re-shapes: the step falls back to rebuilding
/// the post/target caches from the patched chain set (still no fixpoint
/// recompute) and reports `rules.maintain.closure_recompute` instead of
/// `rules.maintain.closure_delta`.
fn delta_apply_closure(
    rule: &Rule,
    db: &Database,
    registry: &SubdbRegistry,
    cache: &mut RuleCache,
    dirty: &BTreeSet<Oid>,
) -> Result<DeltaOutcome, RuleError> {
    let ev = Evaluator::with_compiled(&cache.resolved, db, registry, Arc::clone(&cache.plan))
        .map_err(RuleError::Query)?;
    let mut cc = cache.closure.take().expect("closure cache seeded with the rule");

    // 1. Root delta.
    let mut root_adds: Vec<Oid> = Vec::new();
    let mut root_drops: Vec<Oid> = Vec::new();
    for &o in dirty {
        match (cc.is_root(o), ev.closure_root_ok(o)) {
            (false, true) => root_adds.push(o),
            (true, false) => root_drops.push(o),
            _ => {}
        }
    }
    for &o in &root_drops {
        if let Ok(i) = cc.roots.binary_search(&o) {
            cc.roots.remove(i);
        }
    }
    for &o in &root_adds {
        if let Err(i) = cc.roots.binary_search(&o) {
            cc.roots.insert(i, o);
        }
    }

    // 2. Recompute the affected successor lists.
    let affected = ev.closure_affected(dirty);
    let recompute: Vec<Oid> = affected
        .into_iter()
        .filter(|o| cc.succ.contains_key(o) || cc.is_root(*o))
        .collect();
    let mut seeds: Vec<Oid> = Vec::new();
    let mut frontier: Vec<Oid> = Vec::new();
    let mut drained: Vec<Oid> = Vec::new();
    for (node, list) in ev.closure_succ_batch(&recompute) {
        cc.apply_list(node, list, &mut seeds, &mut frontier, &mut drained);
    }

    // 3. Delta-frontier expansion of newly reachable nodes.
    loop {
        frontier.sort_unstable();
        frontier.dedup();
        frontier.retain(|o| !cc.succ.contains_key(o));
        if frontier.is_empty() {
            break;
        }
        if obs::metrics_enabled() {
            obs::metrics::histogram("oql.closure.frontier").record(frontier.len() as u64);
        }
        let mut next: Vec<Oid> = Vec::new();
        for (node, list) in ev.closure_succ_batch(&frontier) {
            cc.apply_list(node, list, &mut seeds, &mut next, &mut drained);
        }
        frontier = next;
    }

    // 4. Cascade GC of unsupported nodes.
    drained.extend(root_drops.iter().copied());
    while let Some(o) = drained.pop() {
        if cc.supported(o) || !cc.succ.contains_key(&o) {
            continue;
        }
        let list = cc.succ.remove(&o).unwrap_or_default();
        cc.pred.remove(&o);
        for s in list {
            if cc.pred_remove(s, o) {
                drained.push(s);
            }
        }
    }

    // 5. Roots whose chains must be re-derived: reverse reachability from
    //    the changed nodes, plus explicit root adds (an unchanged node that
    //    became a root seeds new chains without any list edit).
    seeds.sort_unstable();
    seeds.dedup();
    let mut visited: FxHashSet<Oid> = seeds.iter().copied().collect();
    let mut queue: Vec<Oid> = seeds;
    while let Some(o) = queue.pop() {
        if let Some(preds) = cc.pred.get(&o) {
            for &p in preds {
                if visited.insert(p) {
                    queue.push(p);
                }
            }
        }
    }
    let mut redo_roots: Vec<Oid> =
        visited.iter().copied().filter(|o| cc.is_root(*o)).collect();
    redo_roots.extend(root_adds.iter().copied());
    redo_roots.sort_unstable();
    redo_roots.dedup();
    let mut drop_set: FxHashSet<Oid> = redo_roots.iter().copied().collect();
    drop_set.extend(root_drops.iter().copied());

    // Partition the cached chains: chains of redo/dropped roots go; the
    // rest stay, but those touching a dirty object re-check their
    // WHERE-prefix verdict (their structure is intact, their attributes
    // may not be).
    let has_prefix = !split_where(&rule.where_).0.is_empty();
    let dirty_hash: FxHashSet<Oid> = dirty.iter().copied().collect();
    let mut dropped: Vec<ExtPattern> = Vec::new();
    let mut recheck: Vec<ExtPattern> = Vec::new();
    for p in cache.ctx_pre.patterns() {
        if p.get(0).is_some_and(|o| drop_set.contains(&o)) {
            dropped.push(p.clone());
        } else if has_prefix
            && p.components().iter().flatten().any(|o| dirty_hash.contains(o))
        {
            recheck.push(p.clone());
        }
    }
    let new_chains = ev.closure_chains(&redo_roots, &mut cc.succ);
    for p in &dropped {
        let c = cc.len_counts.entry(chain_len(p)).or_insert(0);
        *c = c.saturating_sub(1);
    }
    for c in &new_chains {
        *cc.len_counts.entry(c.len()).or_insert(0) += 1;
    }
    let new_width =
        cc.len_counts.iter().filter(|&(_, &n)| n > 0).map(|(&l, _)| l).max().unwrap_or(1);

    if new_width != cc.width {
        // The longest chain length changed: the result intension re-shapes
        // and every cached pattern with it. Rebuild the caches from the
        // patched chain set — the provenance survives, the fixpoint is
        // still not recomputed.
        if obs::metrics_enabled() {
            obs::metrics::counter("rules.maintain.closure_recompute").inc();
        }
        for p in &dropped {
            cache.ctx_pre.remove(p);
        }
        let mut chains: Vec<Vec<Oid>> = cache
            .ctx_pre
            .patterns()
            .map(|p| p.components().iter().flatten().copied().collect())
            .collect();
        chains.extend(new_chains);
        let next_pre = ev.closure_subdb(&cache.ctx_pre.name.clone(), chains);
        cc.width = new_width;
        cache.closure = Some(cc);
        cache.ctx_pre = next_pre;
        let (prefix, suffix) = split_where(&rule.where_);
        let mut post = cache.ctx_pre.clone();
        apply_where(&mut post, prefix, db).map_err(RuleError::Query)?;
        let mut full = post.clone();
        apply_where(&mut full, suffix, db).map_err(RuleError::Query)?;
        let next = project_targets(rule, &full, db)?;
        cache.counts = if counting_target(rule) {
            tally(&post, &target_slots(rule, &post.intension)?)
        } else {
            FxHashMap::default()
        };
        let (inserted, removed) = sym_diff(&cache.target, &next);
        cache.post = post;
        cache.target = next;
        return Ok(DeltaOutcome { inserted, removed });
    }

    if obs::metrics_enabled() {
        obs::metrics::counter("rules.maintain.closure_delta").inc();
    }
    let width = cc.width;
    let mut added: Vec<ExtPattern> = new_chains
        .into_iter()
        .map(|chain| {
            let mut comps = vec![None; width];
            for (i, oid) in chain.into_iter().enumerate() {
                comps[i] = Some(oid);
            }
            ExtPattern::new(comps)
        })
        .collect();
    // Re-derived chains that came back identical net out (a redo root
    // whose subtree was mostly intact) — cancel them before touching the
    // caches so the WHERE/target stage sees only real edits.
    dropped.sort_unstable();
    added.sort_unstable();
    let (dropped, added) = cancel_common(dropped, added);
    for p in &dropped {
        cache.ctx_pre.remove(p);
    }
    for p in &added {
        cache.ctx_pre.insert(p.clone());
    }
    let mut dropped = dropped;
    let mut added = added;
    dropped.extend(recheck.iter().cloned());
    added.extend(recheck);
    cache.closure = Some(cc);
    refresh_post_and_target(rule, db, cache, counting_target(rule), &dropped, &added)
}

/// Drop the elements common to both sorted vectors (multiset
/// cancellation): a chain dropped and re-derived identically is not an
/// edit.
fn cancel_common(a: Vec<ExtPattern>, b: Vec<ExtPattern>) -> (Vec<ExtPattern>, Vec<ExtPattern>) {
    let mut oa: Vec<ExtPattern> = Vec::new();
    let mut ob: Vec<ExtPattern> = Vec::new();
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => match x.cmp(y) {
                std::cmp::Ordering::Less => oa.push(ia.next().unwrap()),
                std::cmp::Ordering::Greater => ob.push(ib.next().unwrap()),
                std::cmp::Ordering::Equal => {
                    ia.next();
                    ib.next();
                }
            },
            (Some(_), None) => oa.push(ia.next().unwrap()),
            (None, Some(_)) => ob.push(ib.next().unwrap()),
            (None, None) => break,
        }
    }
    (oa, ob)
}

/// Count-maintained target update for [`MaintainPlan::DeltaLocal`]: adjust
/// derivation counts by the post-set edits, then patch the target — which
/// always holds exactly the maximal elements of the live count keys — by
/// the keys whose count crossed zero. Births run before deaths so a
/// death's resurrection scan sees the final cover.
fn delta_local_target(
    rule: &Rule,
    cache: &mut RuleCache,
    removed_post: &[ExtPattern],
    added_post: &[ExtPattern],
) -> Result<DeltaOutcome, RuleError> {
    let slots = target_slots(rule, &cache.post.intension)?;
    let mut dead: Vec<ExtPattern> = Vec::new();
    let mut born: Vec<ExtPattern> = Vec::new();
    for p in removed_post {
        let key = p.project(&slots);
        if key.pattern_type().arity() == 0 {
            continue;
        }
        if let Some(c) = cache.counts.get_mut(&key) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                cache.counts.remove(&key);
                dead.push(key);
            }
        }
    }
    for p in added_post {
        let key = p.project(&slots);
        if key.pattern_type().arity() == 0 {
            continue;
        }
        let c = cache.counts.entry(key.clone()).or_insert(0);
        *c += 1;
        if *c == 1 {
            // A key that died and was re-born in the same step nets out.
            if let Some(i) = dead.iter().position(|d| *d == key) {
                dead.swap_remove(i);
            } else {
                born.push(key);
            }
        }
    }
    let mut out = DeltaOutcome::default();
    if born.is_empty() && dead.is_empty() {
        return Ok(out);
    }
    // The part-of relation pins every bound slot of the part — slot 0
    // included — so a cover, eviction, or resurrection scan can only ever
    // match patterns whose head equals the key's head (or is unbound).
    // Bucketing by head turns each O(|target|) scan into a bucket walk:
    // family-projected closure targets hold thousands of mostly-partial
    // chain patterns, and the full scans dominated the delta step.
    fn ix_insert(ix: &mut FxHashMap<Option<Oid>, Vec<ExtPattern>>, p: &ExtPattern) {
        ix.entry(p.get(0)).or_default().push(p.clone());
    }
    fn ix_remove(ix: &mut FxHashMap<Option<Oid>, Vec<ExtPattern>>, p: &ExtPattern) {
        if let Some(b) = ix.get_mut(&p.get(0)) {
            if let Some(i) = b.iter().position(|q| q == p) {
                b.swap_remove(i);
            }
        }
    }
    /// Is `key` strictly part of any pattern in the index?
    fn covered(ix: &FxHashMap<Option<Oid>, Vec<ExtPattern>>, key: &ExtPattern) -> bool {
        match key.get(0) {
            Some(h) => {
                ix.get(&Some(h)).is_some_and(|b| b.iter().any(|q| key.is_part_of(q)))
            }
            None => ix.values().flatten().any(|q| key.is_part_of(q)),
        }
    }
    /// The index entries strictly part of `key`: the matching-head bucket
    /// plus the unbound-head one.
    fn parts_of(
        ix: &FxHashMap<Option<Oid>, Vec<ExtPattern>>,
        key: &ExtPattern,
        f: &mut impl FnMut(&ExtPattern),
    ) {
        let mut walk = |b: Option<&Vec<ExtPattern>>| {
            for q in b.into_iter().flatten().filter(|q| q.is_part_of(key)) {
                f(q);
            }
        };
        walk(ix.get(&key.get(0)));
        if key.get(0).is_some() {
            walk(ix.get(&None));
        }
    }
    let mut by_head: FxHashMap<Option<Oid>, Vec<ExtPattern>> = FxHashMap::default();
    for p in cache.target.patterns() {
        ix_insert(&mut by_head, p);
    }
    for key in born {
        // Covered (or already present) keys stay implicit; an uncovered
        // key evicts the target members it strictly covers.
        if cache.target.contains(&key) {
            continue;
        }
        if is_partial(&key) && covered(&by_head, &key) {
            continue;
        }
        let mut shadowed: Vec<ExtPattern> = Vec::new();
        parts_of(&by_head, &key, &mut |q| shadowed.push(q.clone()));
        for q in shadowed {
            cache.target.remove(&q);
            ix_remove(&mut by_head, &q);
            out.removed.push(q);
        }
        cache.target.insert(key.clone());
        ix_insert(&mut by_head, &key);
        out.inserted.push(key);
    }
    if dead.is_empty() {
        return Ok(out);
    }
    // Resurrection candidates are strictly part of a dead key, hence
    // partial.
    let mut counts_by_head: FxHashMap<Option<Oid>, Vec<ExtPattern>> = FxHashMap::default();
    for k in cache.counts.keys().filter(|k| is_partial(k)) {
        ix_insert(&mut counts_by_head, k);
    }
    for key in dead {
        if !cache.target.remove(&key) {
            continue; // was covered by a live key: nothing visible changed
        }
        ix_remove(&mut by_head, &key);
        out.removed.push(key.clone());
        // Resurrect the maximal live keys the dead pattern was covering.
        let mut cands: Vec<ExtPattern> = Vec::new();
        parts_of(&counts_by_head, &key, &mut |k| {
            if cache.counts.contains_key(k)
                && !cache.target.contains(k)
                && !covered(&by_head, k)
            {
                cands.push(k.clone());
            }
        });
        for k in &cands {
            if cands.iter().any(|d| k.is_part_of(d)) {
                continue;
            }
            cache.target.insert(k.clone());
            ix_insert(&mut by_head, k);
            out.inserted.push(k.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::apply_rule;
    use crate::parser::parse_rule;
    use dood_core::schema::SchemaBuilder;
    use dood_core::value::{DType, Value};

    fn setup() -> (Database, Vec<Oid>, Vec<Oid>) {
        let mut b = SchemaBuilder::new();
        b.e_class("A");
        b.e_class("B");
        b.d_class("v", DType::Int);
        b.attr("A", "v");
        b.aggregate("A", "B");
        let mut db = Database::new(b.build().unwrap());
        let a_cls = db.schema().class_by_name("A").unwrap();
        let b_cls = db.schema().class_by_name("B").unwrap();
        let link = db.schema().own_link_by_name(a_cls, "B").unwrap();
        let avec: Vec<Oid> = (0..5).map(|_| db.new_object(a_cls).unwrap()).collect();
        let bvec: Vec<Oid> = (0..5).map(|_| db.new_object(b_cls).unwrap()).collect();
        for i in 0..5 {
            db.set_attr(avec[i], "v", Value::Int(i as i64)).unwrap();
            db.associate(link, avec[i], bvec[i]).unwrap();
        }
        (db, avec, bvec)
    }

    fn dirty_since(db: &Database, mark: u64) -> BTreeSet<Oid> {
        dirty_closure(db, db.events().since(mark).iter().flat_map(|e| e.touched_oids()))
    }

    #[test]
    fn plans_cover_the_rule_space() {
        let plan = |src: &str| plan_for(&parse_rule("r", src).unwrap());
        assert_eq!(plan("if context A * B then T (A, B)"), MaintainPlan::DeltaLocal);
        assert_eq!(
            plan("if context A * B where A.v > 1 then T (A)"),
            MaintainPlan::DeltaLocal
        );
        // Braces are delta-maintainable now (eval_delta spans every span).
        assert_eq!(plan("if context {A} * B then T (A)"), MaintainPlan::DeltaLocal);
        assert_eq!(
            plan("if context A * B where count(B by A) > 1 then T (A)"),
            MaintainPlan::DeltaReWhere
        );
        // Closure contexts maintain the fixpoint provenance incrementally.
        assert_eq!(plan("if context A ^* then T (A, A_*)"), MaintainPlan::DeltaClosure);
        assert!(supports_incremental(&parse_rule("r", "if context A ^* then T (A, A_*)").unwrap()));
        assert!(supports_incremental(&parse_rule("r", "if context {A} * B then T (A)").unwrap()));
    }

    /// delta_apply after a mixed batch (associate, dissociate, create,
    /// attribute flip) reproduces the from-scratch derivation exactly —
    /// for plain, braced, filtered, and aggregate rules.
    #[test]
    fn delta_matches_full_after_updates() {
        for src in [
            "if context A * B then T (A, B)",
            "if context {A} * B then T (A, B)",
            "if context A [v >= 2] * B then T (A)",
            "if context A * B where A.v >= 1 then T (A, B)",
            "if context A * B where count(B by A) > 1 then T (A)",
        ] {
            let (mut db, avec, bvec) = setup();
            let rule = parse_rule("r", src).unwrap();
            let reg = SubdbRegistry::new();
            let mut cache = seed_cache(&rule, &db, &reg).unwrap();
            let mut mirror = cache.target.clone();

            let a_cls = db.schema().class_by_name("A").unwrap();
            let b_cls = db.schema().class_by_name("B").unwrap();
            let link = db.schema().own_link_by_name(a_cls, "B").unwrap();
            let mark = db.seq();
            db.associate(link, avec[0], bvec[1]).unwrap();
            db.dissociate(link, avec[2], bvec[2]).unwrap();
            db.set_attr(avec[3], "v", Value::Int(99)).unwrap();
            let na = db.new_object(a_cls).unwrap();
            let nb = db.new_object(b_cls).unwrap();
            db.associate(link, na, nb).unwrap();

            let out = delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
            let full = apply_rule(&rule, &db, &reg).unwrap();
            assert_eq!(cache.target.to_vec(), full.to_vec(), "target diverged for `{src}`");
            // Replaying the reported edits reproduces the new target.
            for p in &out.removed {
                assert!(mirror.remove(p), "removed edit not present for `{src}`");
            }
            for p in &out.inserted {
                mirror.insert(p.clone());
            }
            assert_eq!(mirror.to_vec(), full.to_vec(), "edits diverged for `{src}`");
            // The refreshed cache is itself a valid base for another step.
            let mark = db.seq();
            db.dissociate(link, avec[0], bvec[0]).unwrap();
            delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
            let full2 = apply_rule(&rule, &db, &reg).unwrap();
            assert_eq!(cache.target.to_vec(), full2.to_vec(), "second step diverged for `{src}`");
        }
    }

    /// Deleting an object must remove every pattern referencing it and must
    /// not resurrect patterns through the deleted object's former
    /// neighbours (the `dirty_closure`-keeps-deleted-oids regression).
    #[test]
    fn delete_then_delta_does_not_resurrect() {
        let (mut db, avec, _bvec) = setup();
        let rule = parse_rule("r", "if context {A} * B then T (A, B)").unwrap();
        let reg = SubdbRegistry::new();
        let mut cache = seed_cache(&rule, &db, &reg).unwrap();
        let mark = db.seq();
        db.delete_object(avec[1]).unwrap();
        delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
        let full = apply_rule(&rule, &db, &reg).unwrap();
        assert_eq!(cache.target.to_vec(), full.to_vec());
        assert!(cache
            .target
            .patterns()
            .all(|p| p.components().iter().flatten().all(|&o| o != avec[1])));
    }

    /// Counting deletion: two context patterns projecting onto the same
    /// target pattern — removing one keeps the target alive, removing both
    /// kills it.
    #[test]
    fn counting_keeps_multiply_derived_targets() {
        let (mut db, avec, bvec) = setup();
        let a_cls = db.schema().class_by_name("A").unwrap();
        let link = db.schema().own_link_by_name(a_cls, "B").unwrap();
        // a0 now derives through b0 and b1.
        db.associate(link, avec[0], bvec[1]).unwrap();
        let rule = parse_rule("r", "if context A * B then T (A)").unwrap();
        let reg = SubdbRegistry::new();
        let mut cache = seed_cache(&rule, &db, &reg).unwrap();
        assert!(cache.target.patterns().any(|p| p.get(0) == Some(avec[0])));

        let mark = db.seq();
        db.dissociate(link, avec[0], bvec[0]).unwrap();
        let one = delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
        assert!(cache.target.patterns().any(|p| p.get(0) == Some(avec[0])), "count 2→1 kept");
        assert!(!one.changed(), "count 2→1 is invisible in the target");

        let mark = db.seq();
        db.dissociate(link, avec[0], bvec[1]).unwrap();
        let zero = delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
        assert!(cache.target.patterns().all(|p| p.get(0) != Some(avec[0])), "count 1→0 dies");
        assert!(zero.removed.iter().any(|p| p.get(0) == Some(avec[0])));
        assert_eq!(cache.target.to_vec(), apply_rule(&rule, &db, &reg).unwrap().to_vec());
    }

    /// A prerequisite-style self-association for closure rules: five nodes
    /// in a chain n0 → n1 → … → n4.
    fn setup_cyclic() -> (Database, Vec<Oid>) {
        let mut b = SchemaBuilder::new();
        b.e_class("N");
        b.d_class("v", DType::Int);
        b.attr("N", "v");
        b.aggregate_named("N", "N", "Next");
        let mut db = Database::new(b.build().unwrap());
        let n_cls = db.schema().class_by_name("N").unwrap();
        let next = db.schema().own_link_by_name(n_cls, "Next").unwrap();
        let ns: Vec<Oid> = (0..5).map(|_| db.new_object(n_cls).unwrap()).collect();
        for (i, &n) in ns.iter().enumerate() {
            db.set_attr(n, "v", Value::Int(i as i64)).unwrap();
        }
        for w in ns.windows(2) {
            db.associate(next, w[0], w[1]).unwrap();
        }
        (db, ns)
    }

    /// Closure delta maintenance reproduces the from-scratch derivation
    /// after edge insertion (width growth), deletion (width shrink), cycle
    /// creation, attribute flips, and object deletion — and the reported
    /// edits replay exactly.
    #[test]
    fn closure_delta_matches_full_after_updates() {
        for src in [
            "if context N ^* then T (N, N_*)",
            "if context N ^2 then T (N, N_*)",
            "if context N [v < 99] ^* then T (N, N_*)",
            "if context N ^* where N.v >= 0 then T (N, N_*)",
        ] {
            let (mut db, ns) = setup_cyclic();
            let rule = parse_rule("r", src).unwrap();
            let reg = SubdbRegistry::new();
            let mut cache = seed_cache(&rule, &db, &reg).unwrap();
            let n_cls = db.schema().class_by_name("N").unwrap();
            let next = db.schema().own_link_by_name(n_cls, "Next").unwrap();

            // A batch that extends the longest chain, forks a branch, and
            // flips an attribute.
            let mark = db.seq();
            let n5 = db.new_object(n_cls).unwrap();
            db.set_attr(n5, "v", Value::Int(5)).unwrap();
            db.associate(next, ns[4], n5).unwrap();
            db.associate(next, ns[1], ns[3]).unwrap();
            db.set_attr(ns[2], "v", Value::Int(99)).unwrap();
            let mut mirror = cache.target.clone();
            let out = delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
            let full = apply_rule(&rule, &db, &reg).unwrap();
            assert_eq!(cache.target.to_vec(), full.to_vec(), "insert step diverged for `{src}`");
            // Replay the reported edits as the engine does: a width change
            // re-shapes the intension, so the maintained copy is taken
            // wholesale there.
            if mirror.intension.width() != cache.target.intension.width() {
                mirror = cache.target.clone();
            } else {
                for p in &out.removed {
                    assert!(mirror.remove(p), "removed edit not present for `{src}`");
                }
                for p in &out.inserted {
                    mirror.insert(p.clone());
                }
            }
            assert_eq!(mirror.to_vec(), full.to_vec(), "edits diverged for `{src}`");

            // Deletion batch: cut the chain and delete a mid node.
            let mark = db.seq();
            db.dissociate(next, ns[4], n5).unwrap();
            db.delete_object(ns[3]).unwrap();
            delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
            let full = apply_rule(&rule, &db, &reg).unwrap();
            assert_eq!(cache.target.to_vec(), full.to_vec(), "delete step diverged for `{src}`");

            // Cycle creation: n2 → n0 closes a loop.
            let mark = db.seq();
            db.associate(next, ns[2], ns[0]).unwrap();
            delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
            let full = apply_rule(&rule, &db, &reg).unwrap();
            assert_eq!(cache.target.to_vec(), full.to_vec(), "cycle step diverged for `{src}`");
        }
    }

    /// An isolated edge flip far from the chain tips keeps the width and
    /// takes the provenance-patch path (no width rebuild): the cache still
    /// converges to the from-scratch result.
    #[test]
    fn closure_delta_stable_width_patch() {
        let (mut db, ns) = setup_cyclic();
        let n_cls = db.schema().class_by_name("N").unwrap();
        let next = db.schema().own_link_by_name(n_cls, "Next").unwrap();
        // A second, disjoint two-node chain keeps a stable width witness.
        let m0 = db.new_object(n_cls).unwrap();
        let m1 = db.new_object(n_cls).unwrap();
        for (i, &m) in [m0, m1].iter().enumerate() {
            db.set_attr(m, "v", Value::Int(10 + i as i64)).unwrap();
        }
        db.associate(next, m0, m1).unwrap();
        let rule = parse_rule("r", "if context N ^* then T (N, N_*)").unwrap();
        let reg = SubdbRegistry::new();
        let mut cache = seed_cache(&rule, &db, &reg).unwrap();
        let mark = db.seq();
        db.dissociate(next, m0, m1).unwrap();
        db.associate(next, m1, m0).unwrap();
        delta_apply(&rule, &db, &reg, &mut cache, &dirty_since(&db, mark)).unwrap();
        let full = apply_rule(&rule, &db, &reg).unwrap();
        assert_eq!(cache.target.to_vec(), full.to_vec());
        assert_eq!(cache.ctx_pre.intension.width(), 5, "width must not have changed");
        // Untouched chains' provenance survives: ns[0] still reaches ns[1].
        assert!(cache.closure.as_ref().unwrap().succ[&ns[0]].contains(&ns[1]));
    }

    #[test]
    fn dirty_closure_includes_perspectives() {
        let mut b = SchemaBuilder::new();
        b.e_class("Person");
        b.e_class("Student");
        b.generalize("Person", "Student");
        let mut db = Database::new(b.build().unwrap());
        let person = db.schema().class_by_name("Person").unwrap();
        let student = db.schema().class_by_name("Student").unwrap();
        let p = db.new_object(person).unwrap();
        let st = db.specialize(p, student).unwrap();
        let d = dirty_closure(&db, [p]);
        assert!(d.contains(&p) && d.contains(&st));
    }
}
