//! Control strategies (paper §6): the POSTGRES rule-oriented restriction
//! and the inconsistency it causes, versus the paper's result-oriented
//! strategy — demonstrated on the Ra…Rd / REa…REd pipeline.
//!
//! ```sh
//! cargo run --example control_strategies
//! ```

use dood::core::value::Value;
use dood::rules::{ChainStrategy, ControlMode, EvalPolicy, RuleEngine};
use dood::workload::company::{self, CompanySize};

fn build_engine() -> RuleEngine {
    let (db, _) = company::populate(CompanySize::small(), 21);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("Ra", "if context Employee * Department then REa (Employee, Department)")
        .unwrap();
    engine
        .add_rule("Rb", "if context REa:Employee * Project then REb (Employee, Project)")
        .unwrap();
    engine
        .add_rule("Rc", "if context REb:Employee * REb:Project then REc (Project)")
        .unwrap();
    engine
        .add_rule("Rd", "if context REc:Project * Department then REd (Department)")
        .unwrap();
    engine
}

/// Hire an employee onto a brand-new project: an update that must flow
/// through the whole pipeline.
fn hire(engine: &mut RuleEngine) {
    let db = engine.db_mut();
    let employee = db.schema().class_by_name("Employee").unwrap();
    let department = db.schema().class_by_name("Department").unwrap();
    let project = db.schema().class_by_name("Project").unwrap();
    let works_in = db.schema().own_link_by_name(employee, "WorksIn").unwrap();
    let assigned = db.schema().own_link_by_name(employee, "AssignedTo").unwrap();
    let sponsors = db.schema().own_link_by_name(department, "Sponsors").unwrap();
    let d = db.extent(department).next().unwrap();
    let p = db.new_object(project).unwrap();
    db.set_attr(p, "budget", Value::Int(1)).unwrap();
    db.associate(sponsors, d, p).unwrap();
    let e = db.new_object(employee).unwrap();
    db.set_attr(e, "ename", Value::str("new-hire")).unwrap();
    db.associate(works_in, e, d).unwrap();
    db.associate(assigned, e, p).unwrap();
}

fn report(engine: &RuleEngine, label: &str) {
    print!("{label}: ");
    for s in ["REa", "REb", "REc", "REd"] {
        let state = match engine.registry().subdb(s) {
            None => "—".to_string(),
            Some(sd) => {
                let fresh = engine.is_consistent(s).unwrap();
                format!("{}{}", sd.len(), if fresh { "" } else { "(STALE)" })
            }
        };
        print!("{s}={state}  ");
    }
    println!();
}

fn main() {
    // ---------------------------------------------------------------
    // 1. Rule-oriented control (POSTGRES-style): Ra/Rb backward, Rc/Rd
    //    forward. The paper: "a forward chaining rule cannot read any data
    //    written by backward chaining rules".
    // ---------------------------------------------------------------
    println!("== Rule-oriented control (POSTGRES-style) ==");
    let mut engine = build_engine();
    engine.set_mode(ControlMode::RuleOriented);
    engine.set_strategy("Ra", ChainStrategy::Backward);
    engine.set_strategy("Rb", ChainStrategy::Backward);
    engine.set_strategy("Rc", ChainStrategy::Forward);
    engine.set_strategy("Rd", ChainStrategy::Forward);
    engine.query("context REd:Department").unwrap();
    report(&engine, "after bootstrap query  ");
    hire(&mut engine);
    engine.propagate().unwrap();
    report(&engine, "after update + propagate");
    println!(
        "→ Rc/Rd could not re-run (their backward-derived inputs are gone), \
         so REc/REd are inconsistent with the base data.\n"
    );

    // ---------------------------------------------------------------
    // 2. Result-oriented control (the paper's strategy): declare REd
    //    pre-evaluated and REb post-evaluated. The same rules now run
    //    forward when maintaining REd and backward when deriving REb.
    // ---------------------------------------------------------------
    println!("== Result-oriented control (the paper's strategy) ==");
    let mut engine = build_engine();
    engine.set_policy("REd", EvalPolicy::PreEvaluated);
    engine.set_policy("REc", EvalPolicy::PreEvaluated);
    // REa/REb default to post-evaluated.
    engine.query("context REd:Department").unwrap();
    report(&engine, "after bootstrap query  ");
    hire(&mut engine);
    engine.propagate().unwrap();
    report(&engine, "after update + propagate");
    println!(
        "→ REd/REc were forward-maintained through fresh sources; \
         REa/REb were invalidated and will be re-derived on demand."
    );
    engine.query("context REb:Employee * REb:Project").unwrap();
    report(&engine, "after querying REb      ");
    println!("→ every materialized result is consistent.");
}
