//! A textual DDL for OSAM* schemas: parse and print, so a schema can be
//! persisted alongside a data dump (making a stored database fully
//! self-describing) or authored by hand.
//!
//! ```text
//! -- comments start with `--`
//! eclass Person
//! dclass SS string
//! attr Person SS                   -- descriptive attribute (link = SS)
//! attr Student Department Major    -- named attribute link
//! generalize Person Student        -- Student is a subclass of Person
//! aggregate Teacher Section Teaches many
//! aggregate Section Course Course single required
//! interact A B i
//! compose A B c
//! crossproduct A B x
//! ```
//!
//! `print_schema ∘ parse_schema = id` up to comments and blank lines
//! (round-trip tested).

use crate::error::SchemaError;
use crate::schema::assoc::{AssocKind, Cardinality};
use crate::schema::builder::SchemaBuilder;
use crate::schema::graph::Schema;
use crate::value::DType;
use std::fmt;
use std::fmt::Write as _;

/// Errors raised while parsing schema text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SchemaTextError {
    /// A line could not be parsed.
    BadLine { line: usize, content: String },
    /// An unknown value type name in a `dclass` line.
    BadType { line: usize, name: String },
    /// The assembled schema failed validation.
    Schema(SchemaError),
}

impl fmt::Display for SchemaTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaTextError::BadLine { line, content } => {
                write!(f, "schema line {line}: cannot parse `{content}`")
            }
            SchemaTextError::BadType { line, name } => {
                write!(f, "schema line {line}: unknown type `{name}`")
            }
            SchemaTextError::Schema(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SchemaTextError {}

impl From<SchemaError> for SchemaTextError {
    fn from(e: SchemaError) -> Self {
        SchemaTextError::Schema(e)
    }
}

fn dtype_name(t: DType) -> &'static str {
    match t {
        DType::Int => "integer",
        DType::Real => "real",
        DType::Str => "string",
        DType::Bool => "boolean",
    }
}

fn parse_dtype(s: &str) -> Option<DType> {
    match s {
        "integer" | "int" => Some(DType::Int),
        "real" | "float" => Some(DType::Real),
        "string" | "str" => Some(DType::Str),
        "boolean" | "bool" => Some(DType::Bool),
        _ => None,
    }
}

/// Parse a schema from DDL text.
pub fn parse_schema(text: &str) -> Result<Schema, SchemaTextError> {
    let mut b = SchemaBuilder::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split("--").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = || SchemaTextError::BadLine { line: lineno, content: raw.to_string() };
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            ["eclass", name] => {
                b.e_class(*name);
            }
            ["dclass", name, ty] => {
                let t = parse_dtype(ty).ok_or(SchemaTextError::BadType {
                    line: lineno,
                    name: ty.to_string(),
                })?;
                b.d_class(*name, t);
            }
            ["attr", class, domain] => {
                b.attr(*class, *domain);
            }
            ["attr", class, domain, name] => {
                b.attr_named(*class, *domain, *name);
            }
            ["generalize", sup, sub] => {
                b.generalize(*sup, *sub);
            }
            ["aggregate", from, to, name, rest @ ..] => {
                let single = rest.contains(&"single");
                let required = rest.contains(&"required");
                if rest
                    .iter()
                    .any(|w| !matches!(*w, "single" | "many" | "required"))
                {
                    return Err(bad());
                }
                if single {
                    b.aggregate_single_named(*from, *to, *name);
                } else {
                    b.aggregate_named(*from, *to, *name);
                }
                if required {
                    b.required();
                }
            }
            ["interact", from, to, name] => {
                b.interact(*from, *to, *name);
            }
            ["compose", from, to, name] => {
                b.compose(*from, *to, *name);
            }
            ["crossproduct", from, to, name] => {
                b.crossproduct(*from, *to, *name);
            }
            _ => return Err(bad()),
        }
    }
    Ok(b.build()?)
}

/// Print a schema as DDL text (parse → print → parse is the identity).
pub fn print_schema(s: &Schema) -> String {
    let mut out = String::new();
    for c in s.classes() {
        match c.kind.dtype() {
            None => {
                let _ = writeln!(out, "eclass {}", c.name);
            }
            Some(t) => {
                let _ = writeln!(out, "dclass {} {}", c.name, dtype_name(t));
            }
        }
    }
    for a in s.assocs() {
        let from = &s.class(a.from).name;
        let to = &s.class(a.to).name;
        match a.kind {
            AssocKind::Generalization => {
                let _ = writeln!(out, "generalize {from} {to}");
            }
            AssocKind::Aggregation if s.is_attribute(a.id) => {
                if a.name == *to {
                    let _ = writeln!(out, "attr {from} {to}");
                } else {
                    let _ = writeln!(out, "attr {from} {to} {}", a.name);
                }
            }
            AssocKind::Aggregation => {
                let card = match a.cardinality {
                    Cardinality::Single => " single",
                    Cardinality::Many => " many",
                };
                let req = if a.required { " required" } else { "" };
                let _ = writeln!(out, "aggregate {from} {to} {}{card}{req}", a.name);
            }
            AssocKind::Interaction => {
                let _ = writeln!(out, "interact {from} {to} {}", a.name);
            }
            AssocKind::Composition => {
                let _ = writeln!(out, "compose {from} {to} {}", a.name);
            }
            AssocKind::Crossproduct => {
                let _ = writeln!(out, "crossproduct {from} {to} {}", a.name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNI: &str = "
        -- a corner of the university schema
        eclass Person
        eclass Student
        eclass Teacher
        eclass Section
        eclass Course
        dclass SS string
        dclass credits integer
        attr Person SS
        attr Course credits
        generalize Person Student
        generalize Person Teacher
        aggregate Teacher Section Teaches many
        aggregate Section Course Course single required
    ";

    #[test]
    fn parse_basic_schema() {
        let s = parse_schema(UNI).unwrap();
        assert_eq!(s.class_count(), 7);
        let person = s.class_by_name("Person").unwrap();
        let student = s.class_by_name("Student").unwrap();
        assert!(s.is_ancestor(person, student));
        let section = s.class_by_name("Section").unwrap();
        let of = s.own_link_by_name(section, "Course").unwrap();
        assert!(s.assoc(of).required);
        assert_eq!(s.assoc(of).cardinality, Cardinality::Single);
    }

    #[test]
    fn print_parse_round_trip() {
        let s1 = parse_schema(UNI).unwrap();
        let text = print_schema(&s1);
        let s2 = parse_schema(&text).unwrap();
        assert_eq!(print_schema(&s2), text);
        assert_eq!(s1.class_count(), s2.class_count());
        assert_eq!(s1.assoc_count(), s2.assoc_count());
    }

    #[test]
    fn all_five_kinds_round_trip() {
        let ddl = "
            eclass A
            eclass B
            aggregate A B parts many
            generalize A B
            interact A B i
            compose A B c
            crossproduct A B x
        ";
        let s = parse_schema(ddl).unwrap();
        assert_eq!(s.assoc_count(), 5);
        let s2 = parse_schema(&print_schema(&s)).unwrap();
        let kinds: Vec<char> = s2.assocs().iter().map(|a| a.kind.letter()).collect();
        assert_eq!(kinds, vec!['A', 'G', 'I', 'C', 'X']);
    }

    #[test]
    fn errors_are_located() {
        match parse_schema("eclass A\nwhatever B") {
            Err(SchemaTextError::BadLine { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected: {other:?}"),
        }
        match parse_schema("dclass V complex128") {
            Err(SchemaTextError::BadType { name, .. }) => assert_eq!(name, "complex128"),
            other => panic!("unexpected: {other:?}"),
        }
        // Validation errors surface too.
        assert!(matches!(
            parse_schema("eclass A\neclass A"),
            Err(SchemaTextError::Schema(_))
        ));
        assert!(matches!(
            parse_schema("aggregate A B x sideways"),
            Err(SchemaTextError::BadLine { .. })
        ));
    }

    #[test]
    fn full_university_schema_round_trips() {
        // The real Fig. 2.1 schema from the workload crate is exercised via
        // the integration suite; here, a structurally similar diamond.
        let ddl = "
            eclass Person
            eclass Student
            eclass Teacher
            eclass Grad
            eclass TA
            generalize Person Student
            generalize Person Teacher
            generalize Student Grad
            generalize Grad TA
            generalize Teacher TA
        ";
        let s = parse_schema(ddl).unwrap();
        let ta = s.class_by_name("TA").unwrap();
        assert_eq!(s.direct_supers(ta).len(), 2);
        let printed = print_schema(&s);
        assert_eq!(print_schema(&parse_schema(&printed).unwrap()), printed);
    }
}
