//! Determinism of the parallel evaluation paths (DESIGN.md §6): the
//! chunk-partitioned span join, the partial-group-map aggregation, and
//! stratum-parallel forward maintenance must produce results identical to
//! the sequential evaluator at every thread count.
//!
//! Driven by the in-repo seeded harness (`dood::core::propcheck`); replay
//! a reported failure with `DOOD_PROP_SEED=<seed> cargo test <name>`.

use dood::core::pool::ChunkPool;
use dood::core::propcheck::check;
use dood::core::subdb::{ExtPattern, Subdatabase, SubdbRegistry};
use dood::oql::eval::Evaluator;
use dood::oql::resolve::resolve_context;
use dood::oql::{Parser, PlannerMode};
use dood::rules::{EvalPolicy, RuleEngine};
use dood::store::Database;
use dood::workload::university;

const CASES: usize = 16;

/// Context expressions over the university schema exercising inner joins,
/// braces, non-association, conditions, and transitive closure.
const EXPRS: &[&str] = &[
    "Teacher * Section * Course",
    "Course * Section * Teacher",
    "{Teacher * Section} * Course",
    "Department * Course * Section * Student",
    "Student ! Section",
    "Teacher * Section * Course [c# >= 5000]",
    "Course ^*",
];

fn eval_with(db: &Database, reg: &SubdbRegistry, src: &str, pool: ChunkPool) -> Vec<ExtPattern> {
    let e = Parser::parse_context_expr(src).unwrap();
    let r = resolve_context(&e, db.schema(), reg).unwrap();
    Evaluator::new(&r, db, reg).unwrap().with_pool(pool).eval("t").to_vec()
}

fn eval_planner(
    db: &Database,
    reg: &SubdbRegistry,
    src: &str,
    planner: PlannerMode,
) -> Vec<ExtPattern> {
    let e = Parser::parse_context_expr(src).unwrap();
    let r = resolve_context(&e, db.schema(), reg).unwrap();
    Evaluator::new(&r, db, reg).unwrap().with_planner(planner).eval("t").to_vec()
}

/// The partitioned span join is byte-identical to the sequential path at
/// every thread count, on random populations and expressions.
#[test]
fn parallel_span_join_equals_sequential() {
    check("parallel_span_join_equals_sequential", CASES, |g| {
        let seed = g.range(0u64..1000);
        let factor = g.range(1u64..4) as usize;
        let db = university::populate(university::Size::scaled(factor), seed);
        let reg = SubdbRegistry::new();
        let src = EXPRS[g.range(0..EXPRS.len() as u64) as usize];
        // cutoff 0 forces the chunked path even on small candidate sets.
        let sequential = eval_with(&db, &reg, src, ChunkPool::with_threads(1));
        for threads in [2, 4, 8] {
            let parallel =
                eval_with(&db, &reg, src, ChunkPool::with_threads(threads).cutoff(0));
            assert_eq!(sequential, parallel, "threads={threads} expr={src}");
        }
    });
}

/// `PlannerMode::Leftmost` and `MinExtent` return identical subdatabases
/// on random workloads (E9 ablation correctness).
#[test]
fn planner_modes_agree_on_random_workloads() {
    check("planner_modes_agree_on_random_workloads", CASES, |g| {
        let seed = g.range(0u64..1000);
        let db = university::populate(university::Size::small(), seed);
        let reg = SubdbRegistry::new();
        for src in EXPRS {
            let min = eval_planner(&db, &reg, src, PlannerMode::MinExtent);
            let left = eval_planner(&db, &reg, src, PlannerMode::Leftmost);
            assert_eq!(min, left, "expr={src}");
        }
    });
}

/// Grouped aggregation through the partial-group-map merge agrees with
/// the expected group semantics at any configured thread count.
#[test]
fn parallel_aggregation_equals_sequential() {
    check("parallel_aggregation_equals_sequential", CASES, |g| {
        let seed = g.range(0u64..1000);
        let factor = g.range(1u64..3) as usize;
        let threshold = g.range(1u64..30);
        let db = university::populate(university::Size::scaled(factor), seed);
        let reg = SubdbRegistry::new();
        let oql = dood::oql::Oql::new();
        let q = Parser::parse_query(&format!(
            "context Department * Course * Section * Student \
             where count(Student by Course) > {threshold}"
        ))
        .unwrap();
        let run = |threads: &str| {
            std::env::set_var("DOOD_THREADS", threads);
            let out = oql.run(&db, &reg, &q).unwrap().subdb.to_vec();
            std::env::remove_var("DOOD_THREADS");
            out
        };
        let one = run("1");
        let four = run("4");
        assert_eq!(one, four, "threshold={threshold}");
    });
}

/// Stratum-parallel forward maintenance commits the same registry contents
/// as single-threaded propagation, and both match from-scratch derivation.
#[test]
fn parallel_forward_maintenance_is_deterministic() {
    check("parallel_forward_maintenance_is_deterministic", CASES, |g| {
        let seed = g.range(0u64..1000);
        let results: Vec<Vec<Vec<ExtPattern>>> = ["1", "4"]
            .iter()
            .map(|threads| {
                std::env::set_var("DOOD_THREADS", threads);
                let db = university::populate(university::Size::small(), seed);
                let mut engine = RuleEngine::new(db);
                // Two independent results (one stratum) plus a dependent one.
                engine
                    .add_rule("R1", "if context Teacher * Section * Course then TC (Teacher, Course)")
                    .unwrap();
                engine
                    .add_rule("R2", "if context Course * Section * Student then CS (Course, Student)")
                    .unwrap();
                engine
                    .add_rule("R3", "if context TC:Course * Section then TCS (Course, Section)")
                    .unwrap();
                for name in ["TC", "CS", "TCS"] {
                    engine.set_policy(name, EvalPolicy::PreEvaluated);
                    engine.subdb(name).unwrap();
                }
                // A batch of random updates, then forward chaining.
                let teacher = engine.db().schema().class_by_name("Teacher").unwrap();
                let n_new = g.range(1u64..4);
                for _ in 0..n_new {
                    engine.db_mut().new_object(teacher).unwrap();
                }
                let rederived = engine.propagate().unwrap();
                assert!(!rederived.is_empty());
                for name in ["TC", "CS", "TCS"] {
                    assert!(engine.is_consistent(name).unwrap(), "{name} stale");
                }
                std::env::remove_var("DOOD_THREADS");
                let mut out = Vec::new();
                for name in ["TC", "CS", "TCS"] {
                    out.push(engine.registry().subdb(name).unwrap().to_vec());
                }
                out
            })
            .collect();
        assert_eq!(results[0], results[1]);
    });
}

/// The read path shared across pool workers must be `Sync` (tentpole
/// audit): `&Database`, `&SubdbRegistry`, and subdatabases cross thread
/// boundaries in the span join and stratum fan-out.
#[test]
fn read_path_types_are_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<SubdbRegistry>();
    assert_send_sync::<Subdatabase>();
    assert_send_sync::<ExtPattern>();
    assert_send_sync::<ChunkPool>();
}
