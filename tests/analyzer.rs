//! Golden diagnostics for the static analyzer (`dood::rules::analyze`):
//! the paper's §4/§5 programs must lint **clean** (zero diagnostics — any
//! finding is a false positive), each broken variant must produce exactly
//! its expected code, and `RuleEngine::register` must reject error-level
//! programs before any derivation runs. A propcheck property checks the
//! closure guarantee the analyzer is meant to provide: programs it accepts
//! never fail (or panic) during forward or backward evaluation.

use dood::core::diag::{has_errors, Diagnostic};
use dood::core::fxhash::FxHashSet;
use dood::core::propcheck::{check, Gen};
use dood::rules::analyze::analyze;
use dood::rules::program::{Program, SchemaRef};
use dood::rules::{RuleEngine, RuleError};
use dood::workload::{programs, university};

/// Parse + analyze a program text against its `schema builtin` header
/// (defaulting to the university schema).
fn lint(src: &str) -> Vec<Diagnostic> {
    let (prog, parse_diags) = Program::parse(src);
    assert!(parse_diags.is_empty(), "unexpected parse diagnostics: {parse_diags:?}");
    let name = match &prog.schema {
        Some(SchemaRef::Builtin { name, .. }) => name.clone(),
        _ => "university".to_string(),
    };
    let schema = programs::builtin_schema(&name).expect("builtin schema");
    analyze(&prog, &schema, &FxHashSet::default())
}

fn codes(src: &str) -> Vec<&'static str> {
    lint(src).iter().map(|d| d.code).collect()
}

// ---------------------------------------------------------------------
// Clean corpus: zero false positives
// ---------------------------------------------------------------------

#[test]
fn clean_corpus_has_zero_diagnostics() {
    for (name, text) in programs::all() {
        let diags = lint(text);
        assert!(
            diags.is_empty(),
            "false positive(s) on clean program `{name}`:\n{}",
            dood::core::diag::render_all(&diags, name, text)
        );
    }
}

#[test]
fn clean_university_program_registers_and_derives() {
    let (prog, parse_diags) = Program::parse(programs::UNIVERSITY);
    assert!(parse_diags.is_empty());
    let db = university::populate(university::Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    let warnings = engine.register(&prog).expect("clean program accepted");
    assert!(warnings.is_empty(), "{warnings:?}");
    // The derived subdatabases actually evaluate.
    for name in ["Teacher_course", "Suggest_offer", "May_teach", "Grad_teaching_grad"] {
        engine.derive(name).unwrap_or_else(|e| panic!("derive {name}: {e}"));
    }
}

// ---------------------------------------------------------------------
// Broken corpus: each error class, with source anchoring
// ---------------------------------------------------------------------

#[test]
fn unknown_class_e001() {
    let diags = lint(
        "schema builtin university\nrule B:\n  if context Teachr * Section then X (Teachr)\nexport X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E001"]);
    // Anchored at `Teachr` on line 3.
    assert_eq!(diags[0].line, 3);
    assert_eq!(diags[0].owner.as_deref(), Some("B"));
    assert!(diags[0].message.contains("Teachr"));
}

#[test]
fn unknown_subdb_e002() {
    let c = codes(
        "schema builtin university\nrule B:\n  if context Teacher * Nope:Section then X (Teacher)\nexport X\n",
    );
    assert_eq!(c, vec!["E002"]);
}

#[test]
fn extern_silences_unknown_subdb() {
    let c = codes(
        "schema builtin university\nextern Nope\nrule B:\n  if context Teacher * Nope:Section then X (Teacher)\nexport X\n",
    );
    assert!(c.is_empty(), "{c:?}");
}

#[test]
fn unknown_slot_in_subdb_e003() {
    let c = codes(
        "schema builtin university\n\
         rule A:\n  if context Teacher * Section then SD (Teacher)\n\
         rule B:\n  if context SD:Section * Course then X (Course)\nexport X\n",
    );
    assert_eq!(c, vec!["E003"]);
}

#[test]
fn ambiguous_association_e004() {
    // `TA * Section` is the paper's §2 ambiguity: Enrolls via Student vs
    // Teaches via Teacher.
    let diags = lint(
        "schema builtin university\nrule B:\n  if context TA * Section then X (TA)\nexport X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E004"]);
    assert!(diags[0].message.contains("Enrolls") && diags[0].message.contains("Teaches"));
}

#[test]
fn no_association_e005() {
    let c = codes(
        "schema builtin university\nrule B:\n  if context Department * Transcript then X (Department)\nexport X\n",
    );
    assert_eq!(c, vec!["E005"]);
}

#[test]
fn unknown_attribute_e006() {
    let c = codes(
        "schema builtin university\nrule B:\n  if context Course [price > 3] * Section then X (Course)\nexport X\n",
    );
    assert_eq!(c, vec!["E006"]);
}

#[test]
fn type_mismatch_e007() {
    // `title` is a string; comparing with an integer literal can never be
    // satisfied meaningfully.
    let c = codes(
        "schema builtin university\nrule B:\n  if context Course [title > 3] * Section then X (Course)\nexport X\n",
    );
    assert_eq!(c, vec!["E007"]);
}

#[test]
fn projected_away_attribute_e008() {
    // Rule A retains only `title` of Course; rule B then filters on `c#`.
    let c = codes(
        "schema builtin university\n\
         rule A:\n  if context Course * Section then SD (Course [title])\n\
         rule B:\n  if context SD:Course [c# < 5000] * Department then X (Department)\nexport X\n",
    );
    assert_eq!(c, vec!["E008"]);
}

#[test]
fn unknown_where_operand_e009() {
    let c = codes(
        "schema builtin university\nrule B:\n  if context Teacher * Section \
         where Student.name = 'x' then X (Teacher)\nexport X\n",
    );
    assert_eq!(c, vec!["E009"]);
}

#[test]
fn non_numeric_aggregate_e010() {
    let c = codes(
        "schema builtin university\nrule B:\n  if context Course * Section \
         where sum(Course.title) > 3 then X (Course)\nexport X\n",
    );
    assert_eq!(c, vec!["E010"]);
}

#[test]
fn bad_target_e011() {
    let c = codes(
        "schema builtin university\nrule B:\n  if context Teacher * Section then X (Department)\nexport X\n",
    );
    assert_eq!(c, vec!["E011"]);
    // A family target without a closure is also E011.
    let c = codes(
        "schema builtin university\nrule B:\n  if context Teacher * Section then X (Teacher, Teacher_*)\nexport X\n",
    );
    assert_eq!(c, vec!["E011"]);
}

#[test]
fn layout_mismatch_e012() {
    let c = codes(
        "schema builtin university\n\
         rule A:\n  if context Teacher * Section * Course then SD (Teacher, Course)\n\
         rule B:\n  if context Teacher * Section then SD (Teacher)\nexport SD\n",
    );
    assert_eq!(c, vec!["E012"]);
}

#[test]
fn unsafe_target_e013() {
    // `Section` is constrained only by the non-association operator: there
    // is no positive binding to range over.
    let diags = lint(
        "schema builtin university\nrule B:\n  if context Teacher ! Section then X (Section)\nexport X\n",
    );
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"E013"), "{codes:?}");
    // The non-target `!`-only occurrence is a warning, not an error.
    assert!(codes.contains(&"W101"), "{codes:?}");
}

#[test]
fn cyclic_rules_e014_names_full_path() {
    let diags = lint(
        "schema builtin university\n\
         rule C1:\n  if context Teacher * SDB:Section then SDA (Teacher)\n\
         rule C2:\n  if context Section * SDA:Teacher then SDB (Section)\n\
         export SDA SDB\n",
    );
    let cycle: Vec<_> = diags.iter().filter(|d| d.code == "E014").collect();
    assert_eq!(cycle.len(), 1, "{diags:?}");
    // The message carries the actual cycle path and the notes name the
    // rules that close it.
    assert!(cycle[0].message.contains("SDA -> SDB -> SDA")
        || cycle[0].message.contains("SDB -> SDA -> SDB"), "{}", cycle[0].message);
    assert!(cycle[0].notes.iter().any(|n| n.contains("C1")), "{:?}", cycle[0].notes);
    assert!(cycle[0].notes.iter().any(|n| n.contains("C2")), "{:?}", cycle[0].notes);
    assert!(!diags.iter().any(|d| d.code == "E015"));
}

#[test]
fn negation_cycle_e015() {
    let diags = lint(
        "schema builtin university\n\
         rule N1:\n  if context Teacher * SDB:Section then SDA (Teacher)\n\
         rule N2:\n  if context Section ! SDA:Teacher then SDB (Section)\n\
         export SDA SDB\n",
    );
    let cycle: Vec<_> = diags.iter().filter(|d| d.code == "E015").collect();
    assert_eq!(cycle.len(), 1, "{diags:?}");
    assert!(cycle[0].notes.iter().any(|n| n.contains("N2") && n.contains("!")));
    assert!(!diags.iter().any(|d| d.code == "E014"));
}

#[test]
fn duplicate_rule_name_e016() {
    let c = codes(
        "schema builtin university\n\
         rule R:\n  if context Teacher * Section then X (Teacher)\n\
         rule R:\n  if context Student * Section then Y (Student)\n\
         export X Y\n",
    );
    assert_eq!(c, vec!["E016"]);
}

// ---------------------------------------------------------------------
// Lints
// ---------------------------------------------------------------------

#[test]
fn dead_rule_w102() {
    let diags = lint(
        "schema builtin university\n\
         rule Live:\n  if context Teacher * Section then L (Teacher)\n\
         rule Dead:\n  if context Student * Section then D (Student)\n\
         export L\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["W102"]);
    assert_eq!(diags[0].owner.as_deref(), Some("Dead"));
}

#[test]
fn no_dead_rule_lint_without_stated_outputs() {
    // A bare rule set states no outputs, so liveness is undecidable — no
    // W102.
    let c = codes(
        "schema builtin university\nrule R:\n  if context Teacher * Section then L (Teacher)\n",
    );
    assert!(c.is_empty(), "{c:?}");
}

#[test]
fn upstream_of_live_rule_is_live() {
    let c = codes(
        "schema builtin university\n\
         rule A:\n  if context Teacher * Section then SD (Teacher)\n\
         rule B:\n  if context SD:Teacher * Section then X (Teacher)\n\
         export X\n",
    );
    assert!(c.is_empty(), "{c:?}");
}

#[test]
fn duplicate_body_w103() {
    let c = codes(
        "schema builtin university\n\
         rule A:\n  if context Teacher * Section then X (Teacher)\n\
         rule B:\n  if context Teacher * Section then X (Teacher)\n\
         export X\n",
    );
    assert_eq!(c, vec!["W103"]);
}

#[test]
fn null_propagation_w104() {
    // Brace retention keeps Teacher*Section patterns with a Null Course
    // slot; the `=` comparison then silently drops exactly those patterns.
    let diags = lint(
        "schema builtin university\nquery Q:\n  context { Teacher * Section } * Course \
         where Course.title = 'x' display\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["W104"]);
    // Without braces there is nothing retained, hence no lint.
    let c = codes(
        "schema builtin university\nquery Q:\n  context Teacher * Section * Course \
         where Course.title = 'x' display\n",
    );
    assert!(c.is_empty(), "{c:?}");
}

#[test]
fn cross_product_w106() {
    // Neither side of `!` carries a condition: the planner cannot avoid a
    // full cross-product stage, whichever way it directs the edge.
    let diags = lint(
        "schema builtin university\nquery Q:\n  context Teacher * Section ! Course display\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["W106"]);
    // A condition on either endpoint bounds the stage — no lint.
    let c = codes(
        "schema builtin university\nquery Q:\n  context Teacher * Section ! Course[title = 'x'] display\n",
    );
    assert!(c.is_empty(), "{c:?}");
    let c = codes(
        "schema builtin university\nquery Q:\n  context Teacher * Section[textbook = 'x'] ! Course display\n",
    );
    assert!(c.is_empty(), "{c:?}");
    // A subdatabase-qualified endpoint is membership-restricted — no lint.
    let c = codes(
        "schema builtin university\n\
         rule A:\n  if context Teacher[rank = 'Full'] * Section then SD (Section)\n\
         rule B:\n  if context Course ! SD:Section then X (Course)\n\
         export X\n",
    );
    assert!(!c.contains(&"W106"), "{c:?}");
}

#[test]
fn unbounded_cyclic_closure_w107() {
    // `Teacher * Section ^*`: the cycle-back edge Section→Teacher resolves
    // to the same Teacher/Section association the chain already traverses,
    // so an unbounded `^*` is capped only by the per-chain cycle cut.
    let diags = lint("schema builtin university\nquery Q:\n  context Teacher * Section ^* display\n");
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["W107"]);
    // A `^N` iteration bound caps the fixpoint — no lint.
    let c = codes("schema builtin university\nquery Q:\n  context Teacher * Section ^2 display\n");
    assert!(c.is_empty(), "{c:?}");
    // Single-occurrence closures (self-association walks) cycle-cut per
    // chain without re-traversing a chain association — no lint. The clean
    // builtin corpus (cad `Part ^*`, social `Person ^*`) depends on this.
    let c = codes("schema builtin social\nquery Q:\n  context Person ^* display\n");
    assert!(c.is_empty(), "{c:?}");
}

// ---------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------

#[test]
fn register_rejects_before_any_rule_is_added() {
    let (prog, _) = Program::parse(
        "rule Ok_rule:\n  if context Teacher * Section then Good (Teacher)\n\
         rule Bad:\n  if context Teachr * Section then Oops (Teachr)\nexport Good Oops\n",
    );
    let db = university::populate(university::Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    match engine.register(&prog) {
        Err(RuleError::Analysis(diags)) => {
            assert!(has_errors(&diags));
            assert!(diags.iter().any(|d| d.code == "E001"));
        }
        other => panic!("expected analysis rejection, got {other:?}"),
    }
    // Rejection is atomic: even the valid rule of the program was not
    // added, so nothing can derive.
    assert!(matches!(engine.derive("Good"), Err(RuleError::UnderivableSubdb(_))));
}

#[test]
fn register_flags_duplicates_against_existing_rules() {
    let db = university::populate(university::Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("R1", "if context Teacher * Section then SD (Teacher)")
        .unwrap();
    let (prog, _) = Program::parse(
        "rule R1:\n  if context Student * Section then SD2 (Student)\nexport SD2\n",
    );
    match engine.register(&prog) {
        Err(RuleError::Analysis(diags)) => {
            assert!(diags.iter().any(|d| d.code == "E016"), "{diags:?}");
        }
        other => panic!("expected duplicate-name rejection, got {other:?}"),
    }
}

#[test]
fn register_sees_prior_rules_as_sources() {
    let db = university::populate(university::Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("R1", "if context Teacher * Section then SD (Teacher)")
        .unwrap();
    // The program reads SD, derived by the previously added rule — legal.
    let (prog, _) = Program::parse(
        "rule R2:\n  if context SD:Teacher * Section then X (Teacher)\nexport X\n",
    );
    let warnings = engine.register(&prog).expect("SD is a known source");
    assert!(warnings.is_empty(), "{warnings:?}");
    engine.derive("X").unwrap();
}

#[test]
fn strict_mode_promotes_warnings() {
    let src = "rule Live:\n  if context Teacher * Section then L (Teacher)\n\
               rule Dead:\n  if context Student * Section then D (Student)\nexport L\n";
    let (prog, _) = Program::parse(src);
    let db = university::populate(university::Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    engine.set_strict(true);
    assert!(matches!(engine.register(&prog), Err(RuleError::Analysis(_))));
    // Non-strict: same program is accepted, warnings returned.
    let db = university::populate(university::Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    let warnings = engine.register(&prog).expect("warnings are non-fatal");
    assert_eq!(warnings.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["W102"]);
    engine.derive("L").unwrap();
}

// ---------------------------------------------------------------------
// Property: accepted programs evaluate without failure
// ---------------------------------------------------------------------

/// Random association-walk rule programs over the university schema. The
/// generator only chains classes whose pairwise edges resolve, so the
/// analyzer must accept every generated program (a rejection is a false
/// positive); and because the analyzer accepted it, the engine must then
/// derive and re-derive every target without error or panic.
#[test]
fn prop_accepted_programs_never_fail_evaluation() {
    let schema = university::schema();
    let class_names: Vec<&str> = vec![
        "Person", "Student", "Teacher", "Grad", "TA", "RA", "Faculty", "Department", "Course",
        "Section", "Transcript", "Advising",
    ];
    check("analyzer_acceptance_is_sound", 25, |g: &mut Gen| {
        // Build 1–3 chain rules.
        let n_rules = g.range(1..4usize);
        let mut defs: Vec<(String, String)> = Vec::new();
        let mut exports: Vec<String> = Vec::new();
        for r in 0..n_rules {
            let mut chain: Vec<&str> = vec![class_names[g.range(0..class_names.len())]];
            for _ in 0..g.range(1..4usize) {
                let cur = schema.try_class_by_name(chain.last().unwrap()).unwrap();
                let mut candidates: Vec<&str> = class_names
                    .iter()
                    .copied()
                    .filter(|c| !chain.contains(c))
                    .filter(|c| {
                        schema.resolve_edge(cur, schema.try_class_by_name(c).unwrap()).is_ok()
                    })
                    .collect();
                candidates.sort_unstable();
                if candidates.is_empty() {
                    break;
                }
                chain.push(candidates[g.range(0..candidates.len())]);
            }
            if chain.len() < 2 {
                continue;
            }
            let target = chain[g.range(0..chain.len())];
            let name = format!("G{r}");
            let subdb = format!("GS{r}");
            defs.push((
                name,
                format!("if context {} then {subdb} ({target})", chain.join(" * ")),
            ));
            exports.push(subdb);
        }
        if defs.is_empty() {
            return;
        }
        let def_refs: Vec<(&str, &str)> =
            defs.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        let export_refs: Vec<&str> = exports.iter().map(|s| s.as_str()).collect();
        let (prog, parse_diags) = Program::from_rules(&def_refs, &export_refs);
        assert!(parse_diags.is_empty(), "{parse_diags:?}");
        let diags = analyze(&prog, &schema, &FxHashSet::default());
        assert!(
            !has_errors(&diags),
            "analyzer rejected a well-formed walk program:\n{}\n{prog:?}",
            dood::core::diag::render_all(&diags, "gen", &prog.source)
        );
        // Accepted ⇒ evaluation must succeed end to end.
        let db = university::populate(university::Size::small(), g.range(0..1000u64));
        let mut engine = RuleEngine::new(db);
        engine.register(&prog).expect("analyzer accepted");
        for e in &exports {
            engine.derive(e).unwrap_or_else(|err| panic!("derive {e}: {err}"));
        }
        // Forward maintenance over an update batch must also hold.
        engine.propagate().unwrap_or_else(|err| panic!("propagate: {err}"));
    });
}

// ---------------------------------------------------------------------
// Abstract interpretation diagnostics (E017/E018, W108-W110)
// ---------------------------------------------------------------------

#[test]
fn unsatisfiable_condition_e017() {
    // c# < 5 and c# > 10 admits no integer.
    let diags = lint(
        "schema builtin university\n\
         rule B:\n  if context Course [c# < 5 and c# > 10] * Section then X (Course)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E017"]);
    assert_eq!(diags[0].owner.as_deref(), Some("B"));
    assert!(diags[0].message.contains("Course"));
}

#[test]
fn unsatisfiable_integer_gap_e017() {
    // Over Int, 5 < c# < 6 has no inhabitant — only integer narrowing
    // catches this.
    let diags = lint(
        "schema builtin university\n\
         rule B:\n  if context Course [c# > 5 and c# < 6] * Section then X (Course)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E017"]);
}

#[test]
fn where_contradicts_condition_e017() {
    // The slot condition bounds c# below 5000; the WHERE demands > 6000.
    let diags = lint(
        "schema builtin university\n\
         rule B:\n  if context Course [c# < 5000] * Section\n  where Course.c# > 6000\n  then X (Course)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E017"]);
    assert!(diags[0].message.contains("WHERE"));
}

#[test]
fn impossible_count_threshold_e017() {
    let diags = lint(
        "schema builtin university\n\
         rule B:\n  if context Department * Course * Section * Student\n  where count(Student by Course) < 0\n  then X (Course)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E017"]);
    assert!(diags[0].message.contains("count"));
}

#[test]
fn social_unsatisfiable_score_e017() {
    let diags = lint(
        "schema builtin social\n\
         rule B:\n  if context Person [score >= 50 and score < 40] ^* then X (Person, Person_*)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E017"]);
}

#[test]
fn reading_provably_empty_subdb_e018() {
    // Ra's predicate is unsatisfiable, so REa is provably empty and Rb's
    // read of it is statically dead: E017 on Ra, E018 on Rb.
    let diags = lint(
        "schema builtin company\n\
         rule Ra:\n  if context Employee [salary > 10 and salary < 5] * Department then REa (Employee)\n\
         rule Rb:\n  if context REa:Employee * Project then REb (Employee, Project)\n\
         export REb\n",
    );
    let mut codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
    codes.sort_unstable();
    assert_eq!(codes, vec!["E017", "E018"]);
    let e018 = diags.iter().find(|d| d.code == "E018").unwrap();
    assert_eq!(e018.owner.as_deref(), Some("Rb"));
    assert!(e018.message.contains("REa"));
}

#[test]
fn subsumed_where_w108() {
    // c# < 5000 already holds from the slot condition; WHERE c# < 6000
    // can never drop a pattern.
    let diags = lint(
        "schema builtin university\n\
         rule B:\n  if context Course [c# < 5000] * Section\n  where Course.c# < 6000\n  then X (Course)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["W108"]);
    assert_eq!(diags[0].owner.as_deref(), Some("B"));
}

#[test]
fn vacuous_count_threshold_w108() {
    let diags = lint(
        "schema builtin university\n\
         rule B:\n  if context Department * Course * Section * Student\n  where count(Student by Course) >= 0\n  then X (Course)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["W108"]);
}

#[test]
fn unconstrained_wide_chain_w109() {
    // Teaches and Enrolls are both Many-cardinality; no slot carries a
    // condition, so the worst case is a full double fan-out.
    let diags = lint(
        "schema builtin university\n\
         rule B:\n  if context Teacher * Section * Student then X (Teacher, Student)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["W109"]);
    assert!(diags[0].message.contains("join blowup"));
}

#[test]
fn constrained_wide_chain_has_no_w109() {
    // The same chain with a narrowing condition is fine.
    let diags = lint(
        "schema builtin university\n\
         rule B:\n  if context Teacher * Section [section# < 3] * Student then X (Teacher, Student)\n\
         export X\n",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn dead_closure_levels_w110() {
    // TA-Grad is a generalization identity both ways: the closure reaches
    // fixpoint at level 1, so `^3` declares two provably dead levels.
    let diags = lint(
        "schema builtin university\n\
         rule B:\n  if context TA * Grad ^3 then X (TA, TA_*)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["W110"]);
    assert!(diags[0].message.contains("^3"));
}

#[test]
fn association_closure_has_no_w110() {
    // A closure over a real association (Follows) can reach any depth.
    let diags = lint(
        "schema builtin social\n\
         rule B:\n  if context Person ^5 then X (Person, Person_*)\n\
         export X\n",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------
// `allow` directives and engine integration
// ---------------------------------------------------------------------

#[test]
fn allow_directive_suppresses_warning() {
    let diags = lint(
        "schema builtin university\n\
         allow W109\n\
         rule B:\n  if context Teacher * Section * Student then X (Teacher, Student)\n\
         export X\n",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_directive_never_suppresses_errors() {
    let diags = lint(
        "schema builtin university\n\
         allow E017\n\
         rule B:\n  if context Course [c# < 5 and c# > 10] * Section then X (Course)\n\
         export X\n",
    );
    assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E017"]);
}

#[test]
fn allowed_warning_passes_strict_registration() {
    let src = "schema builtin university\n\
               allow W109\n\
               rule B:\n  if context Teacher * Section * Student then X (Teacher, Student)\n\
               export X\n";
    let (prog, parse_diags) = Program::parse(src);
    assert!(parse_diags.is_empty());
    let db = university::populate(university::Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    engine.set_strict(true);
    engine.register(&prog).expect("allowed warning must not trip strict mode");
    engine.derive("X").unwrap();
}

#[test]
fn engine_rejects_statically_unsatisfiable_program() {
    let src = "schema builtin university\n\
               rule B:\n  if context Course [c# < 5 and c# > 10] * Section then X (Course)\n\
               export X\n";
    let (prog, parse_diags) = Program::parse(src);
    assert!(parse_diags.is_empty());
    let db = university::populate(university::Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    match engine.register(&prog) {
        Err(RuleError::Analysis(diags)) => {
            assert!(diags.iter().any(|d| d.code == "E017"));
        }
        other => panic!("expected analysis rejection, got {other:?}"),
    }
}

#[test]
fn every_emitted_code_is_documented() {
    use dood::rules::analyze::{codes, explain};
    // The code table is the single source of truth: every code has an
    // explain entry, codes are unique and ordered, lookups are
    // case-insensitive.
    let all = codes();
    for w in all.windows(2) {
        assert!(w[0].code < w[1].code, "{} !< {}", w[0].code, w[1].code);
    }
    for doc in all {
        assert!(explain(doc.code).is_some());
        assert!(explain(&doc.code.to_ascii_lowercase()).is_some());
        assert!(!doc.summary.is_empty() && !doc.detail.is_empty());
    }
    assert!(explain("E999").is_none());
}

#[test]
fn allow_without_code_p001() {
    let (_, diags) = Program::parse("schema builtin university\n\nallow\n");
    assert!(
        diags.iter().any(|d| d.code == "P001"),
        "bare `allow` should be a program error, got {diags:?}"
    );
}

#[test]
fn forward_reads_backward_w105() {
    let db = university::populate(university::Size::small(), 7);
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule("Ra", "if context Teacher * Section then TS (Teacher, Section)")
        .unwrap();
    engine
        .add_rule("Rb", "if context TS:Teacher * TS:Section then TS2 (Teacher)")
        .unwrap();
    engine.set_strategy("Ra", dood::rules::ChainStrategy::Backward);
    engine.set_strategy("Rb", dood::rules::ChainStrategy::Forward);
    let diags = engine.strategy_diagnostics();
    assert!(
        diags.iter().any(|d| d.code == "W105"),
        "expected the forward-reads-backward lint, got {diags:?}"
    );
}
