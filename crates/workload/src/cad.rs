//! A CAD/CAM bill-of-materials domain — one of the application areas the
//! paper's introduction motivates ("CAD/CAM, office automation, …").
//!
//! Parts form an acyclic `Component` hierarchy; the part-explosion query is
//! the canonical transitive-closure workload (paper §5.2), exercised by the
//! E2 benchmark against the Datalog baseline.

use dood_core::ids::Oid;
use dood_core::schema::{Schema, SchemaBuilder};
use dood_core::value::{DType, Value};
use dood_store::Database;
use dood_core::rng::Rng;

/// Build the CAD schema: `Part` with a `Component` self-aggregation, a
/// `Supplier` with an `Supplies` association, and cost/name attributes.
pub fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.e_class("Part");
    b.e_class("Supplier");
    b.d_class("pname", DType::Str);
    b.d_class("cost", DType::Real);
    b.d_class("sname", DType::Str);
    b.attr("Part", "pname");
    b.attr("Part", "cost");
    b.attr_named("Supplier", "sname", "sname");
    b.aggregate_named("Part", "Part", "Component");
    b.aggregate_named("Supplier", "Part", "Supplies");
    b.build().expect("cad schema valid")
}

/// Shape of a generated bill of materials.
#[derive(Debug, Clone, Copy)]
pub struct BomShape {
    /// Levels below the roots.
    pub depth: usize,
    /// Components per non-leaf part.
    pub fanout: usize,
    /// Number of root assemblies.
    pub roots: usize,
    /// Per-mille probability that a component link reuses an existing part
    /// of the next level (DAG sharing) instead of a fresh part.
    pub share_per_mille: u32,
}

impl BomShape {
    /// A small tree for tests.
    pub fn small() -> Self {
        BomShape { depth: 3, fanout: 2, roots: 2, share_per_mille: 0 }
    }
}

/// Build a BOM database. Returns the database and the root part OIDs.
/// Deterministic in `seed`.
pub fn build_bom(shape: BomShape, seed: u64) -> (Database, Vec<Oid>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new(schema());
    let part = db.schema().class_by_name("Part").unwrap();
    let component = db.schema().own_link_by_name(part, "Component").unwrap();

    let mut roots = Vec::with_capacity(shape.roots);
    let mut level: Vec<Oid> = Vec::new();
    for r in 0..shape.roots {
        let p = db.new_object(part).unwrap();
        db.set_attr(p, "pname", Value::str(format!("asm-{r}"))).unwrap();
        db.set_attr(p, "cost", Value::Real(0.0)).unwrap();
        roots.push(p);
        level.push(p);
    }
    for d in 1..=shape.depth {
        let mut next: Vec<Oid> = Vec::new();
        for &parent in &level {
            for f in 0..shape.fanout {
                let child = if !next.is_empty()
                    && rng.random_range(0u32..1000) < shape.share_per_mille
                {
                    next[rng.random_range(0..next.len())]
                } else {
                    let c = db.new_object(part).unwrap();
                    db.set_attr(c, "pname", Value::str(format!("part-{d}-{f}-{}", next.len())))
                        .unwrap();
                    db.set_attr(c, "cost", Value::Real(rng.random_range(1..100) as f64))
                        .unwrap();
                    next.push(c);
                    c
                };
                db.associate(component, parent, child).unwrap();
            }
        }
        level = next;
    }
    (db, roots)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_bom_has_expected_counts() {
        let (db, roots) = build_bom(BomShape::small(), 3);
        let part = db.schema().class_by_name("Part").unwrap();
        // 2 roots, each a full binary tree of depth 3: 2 * (2+4+8) = 28
        // children + 2 roots.
        assert_eq!(roots.len(), 2);
        assert_eq!(db.extent_size(part), 30);
        let component = db.schema().own_link_by_name(part, "Component").unwrap();
        assert_eq!(db.link_count(component), 28);
    }

    #[test]
    fn sharing_reduces_part_count() {
        let shape = BomShape { depth: 4, fanout: 3, roots: 1, share_per_mille: 500 };
        let (shared, _) = build_bom(shape, 9);
        let (tree, _) = build_bom(BomShape { share_per_mille: 0, ..shape }, 9);
        let part = shared.schema().class_by_name("Part").unwrap();
        assert!(shared.extent_size(part) < tree.extent_size(part));
    }

    #[test]
    fn deterministic() {
        let (a, _) = build_bom(BomShape::small(), 5);
        let (b, _) = build_bom(BomShape::small(), 5);
        assert_eq!(a.object_count(), b.object_count());
    }
}
