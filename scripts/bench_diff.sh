#!/usr/bin/env bash
# Compare two bench-harness JSON-lines result sets and report per-bench
# median deltas.
#
# Usage: scripts/bench_diff.sh BASELINE CURRENT [THRESHOLD_PCT]
#   BASELINE / CURRENT  a BENCH_*.json file, or a directory of them
#   THRESHOLD_PCT       flag regressions above this percentage
#                       (default $DOOD_BENCH_DIFF_PCT, else 10)
#
# Prints one line per bench present in both sets, marking regressions
# beyond the threshold with `REGRESSED` and improvements beyond it with
# `improved`. Exits 1 if any bench regressed, 0 otherwise — callers that
# want it advisory (scripts/ci.sh) ignore the exit code. `#` provenance
# headers (scripts/bench_snapshot.sh) and blank lines are skipped, and
# files without the newer p99/max fields compare fine: only group, bench,
# and median_ns are read.

set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: $0 BASELINE CURRENT [THRESHOLD_PCT]" >&2
    exit 2
fi

baseline="$1"
current="$2"
threshold="${3:-${DOOD_BENCH_DIFF_PCT:-10}}"

# Gather JSON lines from a file or every BENCH_*.json in a directory.
collect() {
    if [ -d "$1" ]; then
        cat "$1"/BENCH_*.json 2>/dev/null || true
    elif [ -f "$1" ]; then
        cat "$1"
    else
        echo "bench_diff: no such file or directory: $1" >&2
        exit 2
    fi
}

collect "$baseline" | awk 'NF && $0 !~ /^#/' > "${TMPDIR:-/tmp}/bench_diff_base.$$"
collect "$current" | awk 'NF && $0 !~ /^#/' > "${TMPDIR:-/tmp}/bench_diff_cur.$$"
trap 'rm -f "${TMPDIR:-/tmp}/bench_diff_base.$$" "${TMPDIR:-/tmp}/bench_diff_cur.$$"' EXIT

awk -v thresh="$threshold" '
    # Pull a string field value out of a flat JSON line.
    function sfield(line, key,    pat, rest) {
        pat = "\"" key "\":\""
        if (index(line, pat) == 0) return ""
        rest = substr(line, index(line, pat) + length(pat))
        return substr(rest, 1, index(rest, "\"") - 1)
    }
    # Pull a numeric field value out of a flat JSON line.
    function nfield(line, key,    pat, rest, i, c, out) {
        pat = "\"" key "\":"
        if (index(line, pat) == 0) return ""
        rest = substr(line, index(line, pat) + length(pat))
        out = ""
        for (i = 1; i <= length(rest); i++) {
            c = substr(rest, i, 1)
            if (c !~ /[0-9eE+.\-]/) break
            out = out c
        }
        return out
    }
    NR == FNR {
        key = sfield($0, "group") "/" sfield($0, "bench")
        med = nfield($0, "median_ns")
        if (key != "/" && med != "") base[key] = med
        next
    }
    {
        key = sfield($0, "group") "/" sfield($0, "bench")
        med = nfield($0, "median_ns")
        if (key == "/" || med == "" || !(key in base)) next
        delta = (med / base[key] - 1) * 100
        mark = ""
        if (delta > thresh) { mark = "  REGRESSED"; bad++ }
        else if (delta < -thresh) mark = "  improved"
        printf "%-48s %12.0fns -> %12.0fns  %+7.2f%%%s\n", key, base[key], med, delta, mark
        n++
    }
    END {
        if (n == 0) { print "bench_diff: no common benches between the two sets" > "/dev/stderr"; exit 2 }
        printf "bench_diff: %d bench(es) compared, %d regressed beyond %s%%\n", n, bad + 0, thresh
        exit (bad > 0 ? 1 : 0)
    }
' "${TMPDIR:-/tmp}/bench_diff_base.$$" "${TMPDIR:-/tmp}/bench_diff_cur.$$"
