//! A small, seedable pseudo-random number generator so the workspace needs
//! no external `rand` crate: SplitMix64 seeding feeding xoshiro256++
//! (Blackman & Vigna), with unbiased range sampling (Lemire's
//! multiply-shift rejection method).
//!
//! The API mirrors the subset of `rand` the workload generators and tests
//! use — [`Rng::seed_from_u64`] and [`Rng::random_range`] — so call sites
//! read identically. Streams are deterministic in the seed and stable
//! across platforms and releases; seeded populations are part of the
//! repository's test oracles, so **changing the stream is a breaking
//! change**.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used to expand a 64-bit seed into generator state and
/// as the per-case seed derivation in [`crate::propcheck`].
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform `u64` in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty range");
        // Lemire's multiply-shift with rejection of the biased low zone.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a (half-open or inclusive) integer range, or a
    /// half-open `f64` range. Panics on an empty range, like `rand`.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draw one uniform sample. Panics if the range is empty.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64,
    u16 => u64,
    u32 => u64,
    u64 => u64,
    usize => u64,
    i32 => i64,
    i64 => i64,
);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_stream_is_stable() {
        // Pin the stream: seeded populations are test oracles elsewhere.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let a = r.random_range(0..70);
            assert!((0..70).contains(&a));
            let b = r.random_range(1..=4i64);
            assert!((1..=4).contains(&b));
            let c = r.random_range(0u32..1000);
            assert!(c < 1000);
            let d = r.random_range(0usize..13);
            assert!(d < 13);
            let e = r.random_range(0usize..=3);
            assert!(e <= 3);
            let f = r.random_range(-50i64..50);
            assert!((-50..50).contains(&f));
            let g = r.random_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&g));
        }
    }

    #[test]
    fn single_element_ranges_work() {
        let mut r = Rng::seed_from_u64(1);
        assert_eq!(r.random_range(3..4), 3);
        assert_eq!(r.random_range(5..=5i64), 5);
        assert_eq!(r.random_range(0u64..=0), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(1).random_range(3..3);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn extreme_signed_ranges() {
        let mut r = Rng::seed_from_u64(11);
        for _ in 0..100 {
            let v = r.random_range(i64::MIN..=i64::MAX);
            let _ = v; // any value is in range; just must not panic
            let w = r.random_range(i64::MIN..0);
            assert!(w < 0);
        }
    }
}
