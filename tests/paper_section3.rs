//! Paper §3 — subdatabases and OQL: Fig. 3.1, Fig. 3.2 / Query 3.1, and
//! Query 3.2, each checked against the outputs the paper states.

mod common;

use common::{assert_patterns, s};
use dood::core::subdb::{PatternType, SubdbRegistry};
use dood::oql::Oql;
use dood::workload::figures::fig_3_1;
use dood::workload::university;

/// Fig. 3.1b: the subdatabase SDB's extensional diagram (constructed as
/// data — the figure is a given instance, not a query result) exhibits
/// exactly the five pattern types the paper enumerates: (Teacher, Section,
/// Course), (Teacher, Section), (Section, Course), (Teacher) and (Course).
#[test]
fn fig_3_1_pattern_types() {
    use dood::core::subdb::{ExtPattern, Intension, SlotDef, Subdatabase};
    let (db, names) = fig_3_1();
    let schema = db.schema();
    let mut int = Intension::new(vec![
        SlotDef::base("Teacher", schema.class_by_name("Teacher").unwrap()),
        SlotDef::base("Section", schema.class_by_name("Section").unwrap()),
        SlotDef::base("Course", schema.class_by_name("Course").unwrap()),
    ]);
    int.add_edge(0, 1);
    int.add_edge(1, 2);
    let mut sdb = Subdatabase::new("SDB", int);
    let n = |k: &str| Some(names[k]);
    for pat in [
        vec![n("t1"), n("s2"), n("c1")],
        vec![n("t2"), n("s3"), n("c1")],
        vec![n("t2"), n("s3"), n("c2")],
        vec![n("t3"), n("s4"), None],
        vec![None, n("s5"), n("c4")],
        vec![n("t4"), None, None],
        vec![None, None, n("c3")],
    ] {
        sdb.insert(ExtPattern::new(pat));
    }
    let census = sdb.pattern_types();
    let mut type_names: Vec<(String, usize)> = census
        .iter()
        .map(|(&t, &n)| (sdb.intension.type_name(t), n))
        .collect();
    type_names.sort();
    assert_eq!(
        type_names,
        vec![
            ("(Course)".to_string(), 1), // c3 (c4 appears with s5)
            ("(Section, Course)".to_string(), 1),
            ("(Teacher)".to_string(), 1),
            ("(Teacher, Section)".to_string(), 1),
            ("(Teacher, Section, Course)".to_string(), 3),
        ]
    );
    // Subsumption leaves the instance untouched: every listed pattern is
    // maximal.
    let before = sdb.len();
    sdb.retain_maximal();
    assert_eq!(sdb.len(), before);
}

/// The brace query `{{Teacher} * {Section}} * {Course}` over the Fig. 3.1
/// base data reconstructs the teacher-side pattern types of the figure,
/// with subsumption dropping every partial that is part of a full chain.
#[test]
fn fig_3_1_braces_reconstruct_partial_patterns() {
    let (db, names) = fig_3_1();
    let reg = SubdbRegistry::new();
    let out = Oql::new()
        .query(&db, &reg, "context {{Teacher} * {Section}} * {Course}")
        .unwrap();
    let sd = out.subdb;
    // Full patterns of the figure: (t1,s2,c1), (t2,s3,c1), (t2,s3,c2).
    let full: Vec<_> = sd
        .patterns()
        .filter(|p| p.pattern_type() == PatternType(0b111))
        .cloned()
        .collect();
    assert_eq!(full.len(), 3);
    let expect = [
        vec![s(names["t1"]), s(names["s2"]), s(names["c1"])],
        vec![s(names["t2"]), s(names["s3"]), s(names["c1"])],
        vec![s(names["t2"]), s(names["s3"]), s(names["c2"])],
    ];
    for e in &expect {
        assert!(full.iter().any(|p| p.components() == e.as_slice()));
    }
    // (t3, s4) survives as a (Teacher, Section) pattern; t4 as (Teacher).
    assert!(sd
        .patterns()
        .any(|p| p.components() == [s(names["t3"]), s(names["s4"]), None]));
    assert!(sd
        .patterns()
        .any(|p| p.components() == [s(names["t4"]), None, None]));
    // t1 alone was subsumed by its full chain.
    assert!(!sd.patterns().any(|p| p.components() == [s(names["t1"]), None, None]));
}

/// Query 3.1: `context Teacher * Section … display` returns the pairs
/// {(t1,s2), (t2,s3), (t3,s4)} — "the extensional pattern (t4) … is not
/// included in the result because its Section component is Null; similarly
/// the pattern (s5) is not included" (Fig. 3.2).
#[test]
fn query_3_1() {
    let (db, names) = fig_3_1();
    let reg = SubdbRegistry::new();
    let out = Oql::new()
        .query(&db, &reg, "context Teacher * Section select name, section# display")
        .unwrap();
    assert_patterns(
        &out.subdb,
        vec![
            vec![s(names["t1"]), s(names["s2"])],
            vec![s(names["t2"]), s(names["s3"])],
            vec![s(names["t3"]), s(names["s4"])],
        ],
    );
    // "The result of the Display operation is a binary table in which each
    // tuple contains a name value and a section# value."
    assert_eq!(out.table.columns, vec!["name", "section#"]);
    assert_eq!(out.table.len(), 3);
    let names_col: Vec<String> =
        out.table.column("name").unwrap().iter().map(|v| v.to_string()).collect();
    assert_eq!(names_col, vec!["t1", "t2", "t3"]);
}

/// Query 3.1 applied through the full SDB context: the association operator
/// over three classes returns only the (Teacher, Section, Course) patterns.
#[test]
fn association_operator_three_way() {
    let (db, _) = fig_3_1();
    let reg = SubdbRegistry::new();
    let out = Oql::new()
        .query(&db, &reg, "context Teacher * Section * Course")
        .unwrap();
    assert_eq!(out.subdb.len(), 3);
    assert!(out
        .subdb
        .patterns()
        .all(|p| p.pattern_type() == PatternType(0b111)));
}

/// Query 3.2: intra-class condition on `c#`, three-way context, `print`.
/// "Print the Department names for all departments that offer 6000-level
/// courses that have current offerings (sections). Also print the titles of
/// these courses and the textbooks used in each section."
#[test]
fn query_3_2() {
    let db = university::populate(university::Size::medium(), 42);
    let reg = SubdbRegistry::new();
    let out = Oql::new()
        .query(
            &db,
            &reg,
            "context Department * Course [c# >= 6000 and c# < 7000] * Section \
             select name, title, textbook print",
        )
        .unwrap();
    assert_eq!(out.table.columns, vec!["name", "title", "textbook"]);
    // Oracle: walk the store by hand.
    let schema = db.schema();
    let course = schema.class_by_name("Course").unwrap();
    let section = schema.class_by_name("Section").unwrap();
    let sc = schema.own_link_by_name(section, "Course").unwrap();
    let cd = schema.own_link_by_name(course, "Department").unwrap();
    let mut expected = 0;
    for sec in db.extent(section) {
        for &c in db.neighbors(sc, sec, true) {
            let n = db.attr(c, "c#").unwrap().as_i64().unwrap();
            if (6000..7000).contains(&n) && !db.neighbors(cd, c, true).is_empty() {
                expected += 1;
            }
        }
    }
    assert_eq!(out.subdb.len(), expected);
    assert!(expected > 0, "workload should include 6000-level offerings");
    // The operation output is a rendered table.
    assert!(out.op_results[0].1.contains("rows)"));
}

/// The paper's constraint note (§3.1 footnote): a non-null constraint on
/// Section→Course would flag s4; the waived schema reports it via
/// constraint checking rather than rejecting the data.
#[test]
fn fig_3_1_constraint_note() {
    use dood::core::schema::SchemaBuilder;
    use dood::core::value::DType;
    let mut b = SchemaBuilder::new();
    b.e_class("Section");
    b.e_class("Course");
    b.d_class("section#", DType::Int);
    b.attr_named("Section", "section#", "section#");
    b.aggregate_single("Section", "Course");
    b.required();
    let mut db = dood::store::Database::new(b.build().unwrap());
    let section = db.schema().class_by_name("Section").unwrap();
    let course = db.schema().class_by_name("Course").unwrap();
    let s4 = db.new_object(section).unwrap();
    let ok = db.new_object(section).unwrap();
    let c1 = db.new_object(course).unwrap();
    let link = db.schema().own_link_by_name(section, "Course").unwrap();
    db.associate(link, ok, c1).unwrap();
    let violations = db.check_constraints();
    assert_eq!(violations.len(), 1);
    assert!(violations[0].contains(&s4.to_string()));
}

/// Inter-class WHERE comparison (paper §3.2: "comparisons between some
/// descriptive attributes of two classes, if these attributes are
/// type-comparable").
#[test]
fn where_inter_class_comparison() {
    let (db, names) = fig_3_1();
    let reg = SubdbRegistry::new();
    // Compare course number against section number scaled — contrived but
    // type-correct (both Int).
    let out = Oql::new()
        .query(
            &db,
            &reg,
            "context Section * Course where Course.c# > Section.section# select title display",
        )
        .unwrap();
    // All four (section, course) pairs satisfy c# (1000..4000) > section#.
    assert_eq!(out.subdb.len(), 4);
    // And a filtering literal variant.
    let out2 = Oql::new()
        .query(&db, &reg, "context Section * Course where Course.c# <= 1000")
        .unwrap();
    // Only c1 (c# = 1000) qualifies; it has two sections (s2, s3).
    assert_patterns(
        &out2.subdb,
        vec![
            vec![s(names["s2"]), s(names["c1"])],
            vec![s(names["s3"]), s(names["c1"])],
        ],
    );
}
