//! Property test: the pretty-printer and parser are inverses over
//! generated ASTs (`parse(print(q)) == q`), driven by the in-repo
//! [`dood_core::propcheck`] harness.
//!
//! Failure cases found by the retired `proptest` suite are pinned as the
//! named `regression_*` tests at the bottom.

use dood_core::propcheck::{check, Gen};
use dood_oql::ast::*;
use dood_oql::parser::Parser;
use dood_oql::printer::print_query;

const KEYWORDS: &[&str] = &[
    "if", "then", "context", "where", "select", "and", "or", "not", "by",
];

const UPPER: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
const ALNUM: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const LOWER_NUM: &str = "abcdefghijklmnopqrstuvwxyz0123456789";

/// `[A-Z][a-zA-Z0-9]{0,5}`, never a keyword.
fn ident(g: &mut Gen) -> String {
    loop {
        let mut s = g.string_of(UPPER, 1..2);
        s.push_str(&g.string_of(ALNUM, 0..6));
        if !KEYWORDS.contains(&s.to_ascii_lowercase().as_str()) {
            return s;
        }
    }
}

/// `[a-z][a-z0-9]{0,4}#?`, never a keyword (modulo the trailing `#`).
fn attr_name(g: &mut Gen) -> String {
    loop {
        let mut s = g.string_of(LOWER, 1..2);
        s.push_str(&g.string_of(LOWER_NUM, 0..5));
        if g.bool(0.5) {
            s.push('#');
        }
        if !KEYWORDS.contains(&s.trim_end_matches('#').to_ascii_lowercase().as_str()) {
            return s;
        }
    }
}

fn classref(g: &mut Gen) -> ClassRef {
    ClassRef { subdb: g.option(ident), name: ident(g) }
}

fn literal(g: &mut Gen) -> Literal {
    match g.range(0..3) {
        0 => Literal::Int(g.range(-1000i64..1000)),
        // Reals with a fractional part so they don't print as integers.
        1 => Literal::Real(g.range(-1000i64..1000) as f64 + 0.5),
        _ => Literal::Str(g.string_of("abcdefghijklmnopqrstuvwxyz '!#", 0..9)),
    }
}

fn cmp_op(g: &mut Gen) -> CmpOp {
    *g.choose(&[CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge])
}

fn pred(g: &mut Gen, depth: usize) -> Pred {
    if depth == 0 || g.bool(0.5) {
        return Pred::Cmp { attr: attr_name(g), op: cmp_op(g), value: literal(g) };
    }
    match g.range(0..3) {
        0 => Pred::And(Box::new(pred(g, depth - 1)), Box::new(pred(g, depth - 1))),
        1 => Pred::Or(Box::new(pred(g, depth - 1)), Box::new(pred(g, depth - 1))),
        _ => Pred::Not(Box::new(pred(g, depth - 1))),
    }
}

fn pat_op(g: &mut Gen) -> PatOp {
    *g.choose(&[PatOp::Assoc, PatOp::NonAssoc])
}

fn item(g: &mut Gen, depth: usize) -> Item {
    if depth == 0 || g.bool(0.6) {
        return Item::Class { class: classref(g), cond: g.option(|g| pred(g, 3)) };
    }
    let first = item(g, depth - 1);
    let rest = g.vec(0..3, |g| (pat_op(g), item(g, depth - 1)));
    Item::Group(Seq { first: Box::new(first), rest })
}

fn seq(g: &mut Gen) -> Seq {
    let first = item(g, 2);
    let rest = g.vec(0..5, |g| (pat_op(g), item(g, 2)));
    Seq { first: Box::new(first), rest }
}

fn context(g: &mut Gen) -> ContextExpr {
    let seq = seq(g);
    let closure = g.option(|g| ClosureSpec { iterations: g.option(|g| g.range(1u32..9)) });
    ContextExpr { seq, closure }
}

fn where_cond(g: &mut Gen) -> WhereCond {
    if g.bool(0.5) {
        let func =
            *g.choose(&[AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max]);
        // SUM/AVG/MIN/MAX require an attribute (parser rule).
        let attr = match (func, g.option(attr_name)) {
            (AggFunc::Count, attr) => attr,
            (_, attr) => Some(attr.unwrap_or_else(|| "v".to_string())),
        };
        WhereCond::Agg {
            func,
            target: classref(g),
            attr,
            by: g.option(classref),
            op: cmp_op(g),
            value: literal(g),
        }
    } else {
        let right = if g.bool(0.5) {
            CmpRhs::Attr(classref(g), attr_name(g))
        } else {
            CmpRhs::Lit(literal(g))
        };
        WhereCond::Cmp { left: (classref(g), attr_name(g)), op: cmp_op(g), right }
    }
}

fn select_item(g: &mut Gen) -> SelectItem {
    match g.range(0..3) {
        0 => SelectItem::Attr(attr_name(g)),
        1 => SelectItem::Attr(ident(g)), // bare class names normalize to Attr
        _ => SelectItem::ClassAttrs(classref(g), g.vec(1..3, attr_name)),
    }
}

fn query(g: &mut Gen) -> Query {
    Query {
        context: context(g),
        where_: g.vec(0..3, where_cond),
        select: g.vec(0..3, select_item),
        ops: g.vec(0..2, ident),
    }
}

fn assert_round_trips(q: &Query) {
    let printed = print_query(q);
    match Parser::parse_query(&printed) {
        Ok(parsed) => assert_eq!(&parsed, q, "round-trip mismatch for `{printed}`"),
        Err(e) => panic!("re-parse of `{printed}` failed: {e}"),
    }
}

#[test]
fn printed_queries_reparse_identically() {
    check("printed_queries_reparse_identically", 256, |g| {
        assert_round_trips(&query(g));
    });
}

/// The lexer never panics on arbitrary input (it may error).
#[test]
fn lexer_total() {
    check("lexer_total", 256, |g| {
        let src = g.printable_string(0..60);
        let _ = dood_oql::lexer::lex(&src);
    });
}

/// The parser never panics on arbitrary token soup.
#[test]
fn parser_total() {
    check("parser_total", 256, |g| {
        let src = g.string_of("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_#*!{}[]().,:^<>= '", 0..60);
        let _ = Parser::parse_query(&src);
        let _ = Parser::parse_context_expr(&src);
    });
}

// ---------------------------------------------------------------------
// Pinned regressions from the retired proptest suite
// (formerly crates/oql/tests/roundtrip.proptest-regressions).
// ---------------------------------------------------------------------

/// The lexer must survive multi-byte UTF-8 input (shrunk case: `"Σ"`).
#[test]
fn regression_lexer_multibyte_input() {
    let _ = dood_oql::lexer::lex("Σ");
    let _ = Parser::parse_query("Σ");
}

/// A deeply nested non-associated group with predicates on several levels,
/// plus qualified WHERE/SELECT clauses — once shrunk from a printer/parser
/// mismatch.
#[test]
fn regression_nested_nonassoc_group_roundtrips() {
    let cmp = |attr: &str, op: CmpOp, value: Literal| Pred::Cmp {
        attr: attr.to_string(),
        op,
        value,
    };
    let q = Query {
        context: ContextExpr {
            seq: Seq {
                first: Box::new(Item::Class {
                    class: ClassRef::base("A"),
                    cond: Some(Pred::Or(
                        Box::new(cmp("j8g52#", CmpOp::Lt, Literal::Real(997.5))),
                        Box::new(Pred::Or(
                            Box::new(cmp("nvde#", CmpOp::Gt, Literal::Str("q".into()))),
                            Box::new(cmp("nb#", CmpOp::Ge, Literal::Real(434.5))),
                        )),
                    )),
                }),
                rest: vec![(
                    PatOp::NonAssoc,
                    Item::Group(Seq {
                        first: Box::new(Item::Group(Seq {
                            first: Box::new(Item::Class {
                                class: ClassRef::base("EMc"),
                                cond: Some(Pred::Or(
                                    Box::new(Pred::Or(
                                        Box::new(Pred::Or(
                                            Box::new(cmp(
                                                "je#",
                                                CmpOp::Neq,
                                                Literal::Real(523.5),
                                            )),
                                            Box::new(cmp(
                                                "wvyx#",
                                                CmpOp::Le,
                                                Literal::Str("!d #!'".into()),
                                            )),
                                        )),
                                        Box::new(cmp("wy#", CmpOp::Le, Literal::Real(-689.5))),
                                    )),
                                    Box::new(Pred::Not(Box::new(Pred::And(
                                        Box::new(cmp("z#", CmpOp::Lt, Literal::Real(-60.5))),
                                        Box::new(cmp(
                                            "pi#",
                                            CmpOp::Gt,
                                            Literal::Str("uaog".into()),
                                        )),
                                    )))),
                                )),
                            }),
                            rest: vec![],
                        })),
                        rest: vec![(
                            PatOp::NonAssoc,
                            Item::Class { class: ClassRef::base("EI"), cond: None },
                        )],
                    }),
                )],
            },
            closure: None,
        },
        where_: vec![
            WhereCond::Cmp {
                left: (ClassRef::base("R"), "l".into()),
                op: CmpOp::Gt,
                right: CmpRhs::Lit(Literal::Str("'!'".into())),
            },
            WhereCond::Cmp {
                left: (ClassRef::qualified("PdOPn", "DqQ26H"), "j".into()),
                op: CmpOp::Eq,
                right: CmpRhs::Lit(Literal::Int(-418)),
            },
        ],
        select: vec![
            SelectItem::ClassAttrs(
                ClassRef::qualified("I", "M59CV"),
                vec!["a99#".into(), "vg0".into()],
            ),
            SelectItem::ClassAttrs(ClassRef::base("AB"), vec!["ur".into()]),
        ],
        ops: vec!["Eks".into()],
    };
    assert_round_trips(&q);
}
