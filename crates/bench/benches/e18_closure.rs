//! E18 — compiled closure kernels (DESIGN.md §11): the frontier-parallel
//! semi-naive fixpoint against the legacy recursive closure interpreter on
//! two cold workloads (the deep social follow-graph and the paper's
//! R6-style five-slot closure context), and provenance-carrying
//! incremental fixpoint maintenance against full recomputation on an
//! update-heavy follow-graph schedule.
//!
//! Afterwards reads back this run's medians and prints two verdicts:
//!
//! * **closure speedup** — the compiled kernel must be ≥ 1.5× faster than
//!   the interpreter on both cold workloads;
//! * **delta ratio** — maintaining the materialized closure through a
//!   10-round update schedule must be ≥ 5× faster than recomputing the
//!   fixpoint per propagate.
//!
//! Prints `PASS`/`WARN`; exits nonzero on a miss only under
//! `DOOD_BENCH_STRICT=1` (shared hosts are noisy, so the hard gate is
//! opt-in for `scripts/ci.sh` and `scripts/bench_snapshot.sh`).

use dood_bench::harness::{fmt_ns, Harness, Record};
use dood_core::subdb::SubdbRegistry;
use dood_core::value::Value;
use dood_oql::parser::Parser;
use dood_oql::resolve::resolve_context;
use dood_oql::{Evaluator, ExecMode};
use dood_rules::{EvalPolicy, RuleEngine};
use dood_store::Database;
use dood_workload::social::{self, SocialShape};
use dood_workload::university;
use std::path::PathBuf;

/// Required compiled-over-interpreted speedup on both cold workloads.
const SPEEDUP_BAR: f64 = 1.5;

/// Required delta-over-recompute speedup on the update schedule.
const DELTA_BAR: f64 = 5.0;

/// University population scale for the R6-style closure context.
const FACTOR: usize = 8;

/// Update rounds per timed maintenance iteration.
const ROUNDS: usize = 10;

/// The paper's R6 shape: a five-slot chain closed over `Student ^*`.
const R6: &str = "Grad * TA * Teacher * Section * Student ^*";

/// The deep-closure shape ROADMAP item 5 asks for: wide frontiers (high
/// fan-out), long chains (many fixpoint rounds), and follow-back cycles
/// (per-chain cycle cuts).
fn deep_shape() -> SocialShape {
    SocialShape { influencers: 4, fanout: 8, depth: 24, cycle_per_mille: 250 }
}

/// A ready-to-run closure evaluator under one execution mode.
fn evaluator<'a>(
    db: &'a Database,
    resolved: &'a dood_oql::resolve::ResolvedContext,
    reg: &'a SubdbRegistry,
    exec: ExecMode,
) -> Evaluator<'a> {
    Evaluator::new(resolved, db, reg).unwrap().with_exec(exec)
}

/// Attach one new follower to a rotating existing person: the smallest
/// dirty set a closure delta can localize around.
fn social_update(e: &mut RuleEngine, i: usize) {
    let db = e.db_mut();
    let person = db.schema().class_by_name("Person").unwrap();
    let follows = db.schema().own_link_by_name(person, "Follows").unwrap();
    let n = db.extent_size(person);
    let from = db.extent(person).nth((i * 13) % n).unwrap();
    let p = db.new_object(person).unwrap();
    db.set_attr(p, "pname", Value::str(format!("new-{i}"))).unwrap();
    db.set_attr(p, "score", Value::Int((i % 100) as i64)).unwrap();
    db.associate(follows, from, p).unwrap();
}

/// The materialized reachability closure over the deep follow graph, with
/// one warm-up update+propagate round so the timed iterations measure
/// steady-state maintenance, not cache seeding.
fn reach_engine(incremental: bool) -> RuleEngine {
    let (db, _) = social::build_graph(deep_shape(), 42);
    let mut e = RuleEngine::new(db);
    e.add_rule("RS", "if context Person ^* then Reach (Person, Person_*)").unwrap();
    e.set_policy("Reach", EvalPolicy::PreEvaluated);
    e.set_incremental(incremental);
    e.subdb("Reach").unwrap();
    social_update(&mut e, 0);
    e.propagate().unwrap();
    e
}

/// `ROUNDS` update+propagate rounds; returns the final closure size
/// (keeps the optimizer honest).
fn update_workload(e: &mut RuleEngine) -> usize {
    for i in 0..ROUNDS {
        social_update(e, i + 1);
        e.propagate().unwrap();
    }
    e.registry().subdb("Reach").unwrap().len()
}

fn main() {
    let mut h = Harness::new("e18_closure");

    // Cold fixpoints: compiled kernel vs legacy interpreter, results
    // asserted identical before timing.
    let (social_db, _) = social::build_graph(deep_shape(), 42);
    let uni_db = university::populate(university::Size::scaled(FACTOR), 42);
    for (name, db, query) in
        [("social", &social_db, "Person ^*"), ("r6", &uni_db, R6)]
    {
        let reg = SubdbRegistry::new();
        let expr = Parser::parse_context_expr(query).unwrap();
        let resolved = resolve_context(&expr, db.schema(), &reg).unwrap();
        let compiled = evaluator(db, &resolved, &reg, ExecMode::Compiled);
        let interp = evaluator(db, &resolved, &reg, ExecMode::Interp);
        assert_eq!(
            compiled.eval("x").to_vec(),
            interp.eval("x").to_vec(),
            "{name}: compiled and interpreted closure must agree"
        );
        h.bench(&format!("compiled/{name}"), || compiled.eval("x").len());
        h.bench(&format!("interp/{name}"), || interp.eval("x").len());
    }

    // Update-heavy maintenance: provenance-carrying delta closure vs
    // recomputing the fixpoint per propagate.
    h.bench_batched("delta/update_heavy", || reach_engine(true), |mut e| update_workload(&mut e));
    h.bench_batched(
        "recompute/update_heavy",
        || reach_engine(false),
        |mut e| update_workload(&mut e),
    );

    h.finish();
    check_verdicts();
}

/// Read back this run's records and print the speedup and delta verdicts.
fn check_verdicts() {
    if std::env::var("DOOD_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        println!("# e18 verdicts skipped (smoke mode: timings are not meaningful)");
        return;
    }
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_default();
    let own_path = match std::env::var_os("DOOD_BENCH_JSON") {
        Some(dir) => PathBuf::from(dir).join("BENCH_e18_closure.json"),
        None => workspace.join("target/bench-json/BENCH_e18_closure.json"),
    };
    let med = |bench: &str| median_of(&own_path, "e18_closure", bench);
    let mut strict_fail = false;

    // Closure speedup: ≥ SPEEDUP_BAR on both cold workloads.
    let mut fast = 0usize;
    let mut seen = 0usize;
    for name in ["social", "r6"] {
        let (Some(c), Some(i)) = (med(&format!("compiled/{name}")), med(&format!("interp/{name}")))
        else {
            continue;
        };
        seen += 1;
        let speedup = i / c;
        println!(
            "# e18 {name}: compiled {} vs interp {} ({speedup:.2}x)",
            fmt_ns(c),
            fmt_ns(i)
        );
        if speedup >= SPEEDUP_BAR {
            fast += 1;
        }
    }
    if seen == 2 {
        let verdict = if fast >= 2 { "PASS" } else { "WARN" };
        println!("# e18 closure speedup: {verdict} — {fast}/{seen} workloads ≥ {SPEEDUP_BAR}x");
        strict_fail |= verdict == "WARN";
    } else {
        println!("# e18 closure speedup check skipped (missing records in {})", own_path.display());
    }

    // Delta ratio: maintenance ≥ DELTA_BAR× faster than recomputation.
    match (med("delta/update_heavy"), med("recompute/update_heavy")) {
        (Some(delta), Some(recompute)) => {
            let ratio = recompute / delta;
            let verdict = if ratio >= DELTA_BAR { "PASS" } else { "WARN" };
            println!(
                "# e18 delta ratio: {verdict} — delta {} vs recompute {} ({ratio:.2}x, bar {DELTA_BAR:.0}x)",
                fmt_ns(delta),
                fmt_ns(recompute)
            );
            strict_fail |= verdict == "WARN";
        }
        _ => println!("# e18 delta ratio check skipped (missing records in {})", own_path.display()),
    }

    if strict_fail && std::env::var("DOOD_BENCH_STRICT").is_ok_and(|v| v == "1") {
        eprintln!("# e18: verdict missed under DOOD_BENCH_STRICT=1");
        std::process::exit(1);
    }
}

/// The first `group`/`bench` record's median in a JSON-lines bench file.
fn median_of(path: &PathBuf, group: &str, bench: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .filter_map(Record::from_json_line)
        .find(|r| r.group == group && r.bench == bench)
        .map(|r| r.median_ns)
}
