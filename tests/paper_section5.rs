//! Paper §5 — association pattern subexpressions (braces + subsumption,
//! Query 5.1) and the transitive closure operation (rules R6 and R7).

mod common;

use common::{assert_patterns, s};
use dood::core::ids::Oid;
use dood::core::subdb::SubdbRegistry;
use dood::core::value::Value;
use dood::oql::Oql;
use dood::rules::RuleEngine;
use dood::store::Database;
use dood::workload::figures::fig_5_1;
use dood::workload::university;

/// §5.1's exact example: "if the original database contains only the two
/// patterns (a1,b5,c5,d5) and (b2,c2), then the expression A * {B * C} * D
/// returns the extensional patterns (a1,b5,c5,d5) and (b2,c2). The
/// extensional pattern (b5,c5) will not appear independently in the result
/// since it already appears as a part of (a1,b5,c5,d5)."
#[test]
fn braces_subsumption_a_b_c_d() {
    let (db, names) = fig_5_1();
    let reg = SubdbRegistry::new();
    let out = Oql::new().query(&db, &reg, "context A * {B * C} * D").unwrap();
    assert_patterns(
        &out.subdb,
        vec![
            vec![s(names["a1"]), s(names["b5"]), s(names["c5"]), s(names["d5"])],
            vec![None, s(names["b2"]), s(names["c2"]), None],
        ],
    );
}

/// Nested subexpressions: `{{A} * B} * C` identifies the pattern types (A),
/// (A,B) and (A,B,C) (paper §5.1).
#[test]
fn nested_braces_pattern_types() {
    let (db, names) = fig_5_1();
    let reg = SubdbRegistry::new();
    // Over the §5.1 instance: a1 extends all the way to c5, so only the
    // full (A,B,C) pattern survives for a1's chain.
    let out = Oql::new().query(&db, &reg, "context {{A} * B} * C").unwrap();
    assert_patterns(
        &out.subdb,
        vec![vec![s(names["a1"]), s(names["b5"]), s(names["c5"])]],
    );
    // Add an A object with no B: it survives as an (A) pattern.
    let mut db = db;
    let a_cls = db.schema().class_by_name("A").unwrap();
    let lonely = db.new_object(a_cls).unwrap();
    let out2 = Oql::new().query(&db, &reg, "context {{A} * B} * C").unwrap();
    assert_patterns(
        &out2.subdb,
        vec![
            vec![s(names["a1"]), s(names["b5"]), s(names["c5"])],
            vec![s(lonely), None, None],
        ],
    );
}

/// Query 5.1: "Display the SS's of all graduate students whether they have
/// advisors or not, and for those graduate students who have advisors
/// display their advisors' names … each tuple contains a Grad's SS and
/// either a faculty name or a Null value if the student has no advisor."
#[test]
fn query_5_1_braces() {
    let (db, pop) = university::populate_with_handles(university::Size::small(), 3);
    let reg = SubdbRegistry::new();
    let out = Oql::new()
        .query(
            &db,
            &reg,
            "context {{Grad} * Advising} * Faculty select Grad[SS], Faculty[name] display",
        )
        .unwrap();
    // Every grad appears.
    let grads_in_result = out.subdb.extent_of("Grad").unwrap();
    assert_eq!(grads_in_result.len(), pop.grads.len());
    // Advised grads carry a faculty; unadvised ones carry Nulls.
    let advising_cls = db.schema().class_by_name("Advising").unwrap();
    let advisee = db.schema().own_link_by_name(advising_cls, "Advisee").unwrap();
    for p in out.subdb.patterns() {
        let g = p.get(0).expect("grad slot never Null here");
        let advised = !db.neighbors(advisee, g, false).is_empty();
        assert_eq!(p.get(1).is_some(), advised, "pattern {p}");
        assert_eq!(p.get(2).is_some(), advised, "pattern {p}");
    }
    // And the table has exactly the two selected columns.
    assert_eq!(out.table.columns, vec!["Grad.SS", "Faculty.name"]);
    assert!(out
        .table
        .rows
        .iter()
        .any(|r| r[1] == Value::Null), "some grad should lack an advisor");
}

/// Build the deterministic grad-teaching-grad instance used by R6/R7:
/// g1 (a TA) teaches a section in which g2 is enrolled; g2 (also a TA)
/// teaches a section in which g3 is enrolled.
fn grad_chain_db() -> (Database, [Oid; 3]) {
    let mut db = Database::new(university::schema());
    let s = db.schema_arc();
    let person = s.class_by_name("Person").unwrap();
    let student = s.class_by_name("Student").unwrap();
    let teacher = s.class_by_name("Teacher").unwrap();
    let grad = s.class_by_name("Grad").unwrap();
    let ta = s.class_by_name("TA").unwrap();
    let course = s.class_by_name("Course").unwrap();
    let section = s.class_by_name("Section").unwrap();
    let teaches = s.own_link_by_name(teacher, "Teaches").unwrap();
    let enrolls = s.own_link_by_name(student, "Enrolls").unwrap();
    let sc = s.own_link_by_name(section, "Course").unwrap();

    let mk_grad = |i: usize, db: &mut Database| {
        let p = db.new_object(person).unwrap();
        db.set_attr(p, "name", Value::str(format!("g{i}"))).unwrap();
        db.set_attr(p, "SS", Value::str(format!("ss{i}"))).unwrap();
        let st = db.specialize(p, student).unwrap();
        let g = db.specialize(st, grad).unwrap();
        (p, st, g)
    };
    let (p1, _st1, g1) = mk_grad(1, &mut db);
    let (p2, st2, g2) = mk_grad(2, &mut db);
    let (_p3, st3, g3) = mk_grad(3, &mut db);

    // g1 and g2 are TAs (Teacher + Grad perspectives).
    let t1 = db.specialize(p1, teacher).unwrap();
    let ta1 = db.specialize(g1, ta).unwrap();
    db.add_perspective(t1, ta1).unwrap();
    let t2 = db.specialize(p2, teacher).unwrap();
    let ta2 = db.specialize(g2, ta).unwrap();
    db.add_perspective(t2, ta2).unwrap();

    let c = db.new_object(course).unwrap();
    let s1 = db.new_object(section).unwrap();
    let s2 = db.new_object(section).unwrap();
    db.associate(sc, s1, c).unwrap();
    db.associate(sc, s2, c).unwrap();
    db.associate(teaches, t1, s1).unwrap();
    db.associate(teaches, t2, s2).unwrap();
    db.associate(enrolls, st2, s1).unwrap();
    db.associate(enrolls, st3, s2).unwrap();
    (db, [g1, g2, g3])
}

/// Rule R6: "Derive the Grad_teaching_grad hierarchy … the intensional
/// pattern of the derived subdatabase is determined at runtime."
#[test]
fn rule_r6_closure() {
    let (db, [g1, g2, g3]) = grad_chain_db();
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule(
            "R6",
            "if context Grad * TA * Teacher * Section * Student ^* \
             then Grad_teaching_grad (Grad, Grad_*)",
        )
        .unwrap();
    let sd = engine.subdb("Grad_teaching_grad").unwrap();
    // Runtime intension: Grad, Grad_1, Grad_2 (g1 → g2 → g3).
    assert_eq!(sd.intension.width(), 3);
    assert_eq!(
        sd.intension.slots.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
        vec!["Grad", "Grad_1", "Grad_2"]
    );
    // Maximal chains: (g1,g2,g3); g2's chain (g2,g3) and g3 alone remain as
    // distinct roots (they are not positional parts of the longer chain).
    assert_patterns(
        sd,
        vec![
            vec![s(g1), s(g2), s(g3)],
            vec![s(g2), s(g3), None],
            vec![s(g3), None, None],
        ],
    );
}

/// Rule R7: "Derive a subdatabase which contains only the 1st level and 3rd
/// level in the grad-teaching-grad hierarchy" — `(Grad, Grad_2)`.
#[test]
fn rule_r7_levels() {
    let (db, [g1, g2, g3]) = grad_chain_db();
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule(
            "R7",
            "if context Grad * TA * Teacher * Section * Student ^* \
             then First_and_third (Grad, Grad_2)",
        )
        .unwrap();
    let sd = engine.subdb("First_and_third").unwrap();
    assert_eq!(sd.intension.width(), 2);
    assert_patterns(
        sd,
        vec![
            vec![s(g1), s(g3)],
            vec![s(g2), None],
            vec![s(g3), None],
        ],
    );
}

/// Bounded iteration `^N`: N traversals produce at most N+1 levels
/// ("an optional number N following the sign causes the underlying system
/// to traverse the cycle N times").
#[test]
fn bounded_iteration_limits_depth() {
    let (db, [g1, g2, _g3]) = grad_chain_db();
    let mut engine = RuleEngine::new(db);
    engine
        .add_rule(
            "R6b",
            "if context Grad * TA * Teacher * Section * Student ^1 \
             then One_level (Grad, Grad_*)",
        )
        .unwrap();
    let sd = engine.subdb("One_level").unwrap();
    assert_eq!(sd.intension.width(), 2);
    assert!(sd.patterns().any(|p| p.components() == [s(g1), s(g2)]));
}

/// Prerequisite chains: the `Course ^*` closure over the Prereq
/// self-association, queried through OQL directly.
#[test]
fn course_prereq_closure() {
    let db = university::populate(university::Size::medium(), 5);
    let reg = SubdbRegistry::new();
    let out = Oql::new().query(&db, &reg, "context Course ^*").unwrap();
    let sd = out.subdb;
    // Every course appears as a root.
    let course_cls = db.schema().class_by_name("Course").unwrap();
    assert_eq!(sd.slot_extent(0).len(), db.extent_size(course_cls));
    // Chains follow Prereq links: verify each consecutive pair is linked.
    let prereq = db.schema().own_link_by_name(course_cls, "Prereq").unwrap();
    for p in sd.patterns() {
        for w in 0..p.width() - 1 {
            if let (Some(a), Some(b)) = (p.get(w), p.get(w + 1)) {
                assert!(db.linked(prereq, a, b), "chain step {a} -> {b} not a Prereq link");
            }
        }
    }
    assert!(sd.intension.width() >= 2, "population should contain prereq chains");
}
