//! Property test: the pretty-printer and parser are inverses over
//! generated ASTs (`parse(print(q)) == q`).

use dood_oql::ast::*;
use dood_oql::parser::Parser;
use dood_oql::printer::print_query;
use proptest::prelude::*;

const KEYWORDS: &[&str] = &[
    "if", "then", "context", "where", "select", "and", "or", "not", "by",
];

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,5}"
        .prop_filter("not a keyword", |s| {
            !KEYWORDS.contains(&s.to_ascii_lowercase().as_str())
        })
}

fn attr_name() -> impl Strategy<Value = String> {
    // Lowercase attributes, optionally with the paper's `#`.
    "[a-z][a-z0-9]{0,4}#?".prop_filter("not a keyword", |s| {
        !KEYWORDS.contains(&s.trim_end_matches('#').to_ascii_lowercase().as_str())
    })
}

fn classref() -> impl Strategy<Value = ClassRef> {
    (proptest::option::of(ident()), ident())
        .prop_map(|(subdb, name)| ClassRef { subdb, name })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1000i64..1000).prop_map(Literal::Int),
        // Reals with a fractional part so they don't print as integers.
        (-1000i64..1000).prop_map(|n| Literal::Real(n as f64 + 0.5)),
        "[a-z '!#]{0,8}".prop_map(Literal::Str),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Neq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn pred() -> impl Strategy<Value = Pred> {
    let leaf = (attr_name(), cmp_op(), literal())
        .prop_map(|(attr, op, value)| Pred::Cmp { attr, op, value });
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Pred::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Pred::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|p| Pred::Not(Box::new(p))),
        ]
    })
}

fn item() -> impl Strategy<Value = Item> {
    let class = (classref(), proptest::option::of(pred()))
        .prop_map(|(class, cond)| Item::Class { class, cond });
    class.prop_recursive(2, 8, 3, |inner| {
        (
            inner.clone(),
            proptest::collection::vec((pat_op(), inner), 0..3),
        )
            .prop_map(|(first, rest)| Item::Group(Seq { first: Box::new(first), rest }))
    })
}

fn pat_op() -> impl Strategy<Value = PatOp> {
    prop_oneof![Just(PatOp::Assoc), Just(PatOp::NonAssoc)]
}

fn seq() -> impl Strategy<Value = Seq> {
    (item(), proptest::collection::vec((pat_op(), item()), 0..4))
        .prop_map(|(first, rest)| Seq { first: Box::new(first), rest })
}

fn context() -> impl Strategy<Value = ContextExpr> {
    (
        seq(),
        proptest::option::of(proptest::option::of(1u32..9)),
    )
        .prop_map(|(seq, closure)| ContextExpr {
            seq,
            closure: closure.map(|iterations| ClosureSpec { iterations }),
        })
}

fn where_cond() -> impl Strategy<Value = WhereCond> {
    prop_oneof![
        (
            prop_oneof![
                Just(AggFunc::Count),
                Just(AggFunc::Sum),
                Just(AggFunc::Avg),
                Just(AggFunc::Min),
                Just(AggFunc::Max),
            ],
            classref(),
            proptest::option::of(attr_name()),
            proptest::option::of(classref()),
            cmp_op(),
            literal(),
        )
            .prop_map(|(func, target, attr, by, op, value)| {
                // SUM/AVG/MIN/MAX require an attribute (parser rule).
                let attr = if func == AggFunc::Count {
                    attr
                } else {
                    Some(attr.unwrap_or_else(|| "v".to_string()))
                };
                WhereCond::Agg { func, target, attr, by, op, value }
            }),
        (
            classref(),
            attr_name(),
            cmp_op(),
            prop_oneof![
                (classref(), attr_name()).prop_map(|(c, a)| CmpRhs::Attr(c, a)),
                literal().prop_map(CmpRhs::Lit),
            ],
        )
            .prop_map(|(c, a, op, right)| WhereCond::Cmp { left: (c, a), op, right }),
    ]
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        attr_name().prop_map(SelectItem::Attr),
        ident().prop_map(SelectItem::Attr), // bare class names normalize to Attr
        (classref(), proptest::collection::vec(attr_name(), 1..3))
            .prop_map(|(c, attrs)| SelectItem::ClassAttrs(c, attrs)),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    (
        context(),
        proptest::collection::vec(where_cond(), 0..3),
        proptest::collection::vec(select_item(), 0..3),
        proptest::collection::vec(ident(), 0..2),
    )
        .prop_map(|(context, where_, select, ops)| Query { context, where_, select, ops })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn printed_queries_reparse_identically(q in query()) {
        let printed = print_query(&q);
        let parsed = Parser::parse_query(&printed)
            .map_err(|e| TestCaseError::fail(format!("re-parse of `{printed}` failed: {e}")))?;
        prop_assert_eq!(parsed, q, "round-trip mismatch for `{}`", printed);
    }

    /// The lexer never panics on arbitrary input (it may error).
    #[test]
    fn lexer_total(src in "\\PC{0,60}") {
        let _ = dood_oql::lexer::lex(&src);
    }

    /// The parser never panics on arbitrary token soup.
    #[test]
    fn parser_total(src in "[A-Za-z0-9_#*!{}\\[\\]().,:^<>= ']{0,60}") {
        let _ = Parser::parse_query(&src);
        let _ = Parser::parse_context_expr(&src);
    }
}
