//! E8 — baseline sanity: naive vs semi-naive fixpoint evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dood_bench::tc_program_and_edb;
use dood_datalog::{naive, seminaive};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_datalog");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for n in [16u64, 32, 64] {
        let (p, edb) = tc_program_and_edb(n);
        g.bench_with_input(BenchmarkId::new("naive", n), &(p.clone(), edb.clone()), |b, (p, e)| {
            b.iter(|| black_box(naive(p, e).0.total()));
        });
        g.bench_with_input(BenchmarkId::new("seminaive", n), &(p, edb), |b, (p, e)| {
            b.iter(|| black_box(seminaive(p, e).0.total()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
