//! E7 — grouped aggregation (`COUNT … BY …`, rule R2) at scale.

use dood_bench::aggregate_query;
use dood_bench::harness::Harness;
use dood_workload::university;

fn main() {
    let mut h = Harness::new("e7_aggregate");
    for factor in [1usize, 2, 4] {
        let db = university::populate(university::Size::scaled(factor), 8);
        h.bench(&format!("{factor}"), || aggregate_query(&db, 10));
    }
    h.finish();
}
