//! OQL error types.

use dood_core::diag::{line_col, Diagnostic, Span};
use dood_core::error::ResolveError;
use std::fmt;

/// A syntax error with source position. `line`/`col` are 1-based and filled
/// by [`ParseError::located`]; they stay 0 (unknown) for errors created
/// without source access, in which case the byte offset is reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source.
    pub at: usize,
    /// Message.
    pub msg: String,
    /// 1-based line (0 = unknown).
    pub line: u32,
    /// 1-based column (0 = unknown).
    pub col: u32,
}

impl ParseError {
    /// New parse error at a byte offset (position not yet resolved).
    pub fn new(at: usize, msg: impl Into<String>) -> Self {
        ParseError { at, msg: msg.into(), line: 0, col: 0 }
    }

    /// Resolve `at` to a line/column against the source text.
    pub fn located(mut self, src: &str) -> Self {
        let (line, col) = line_col(src, self.at);
        self.line = line;
        self.col = col;
        self
    }

    /// Convert to a renderable diagnostic (code `P001`).
    pub fn to_diagnostic(&self, src: &str) -> Diagnostic {
        Diagnostic::error("P001", self.msg.clone()).with_span(Span::point(self.at), src)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "syntax error at line {}, column {}: {}", self.line, self.col, self.msg)
        } else {
            write!(f, "syntax error at offset {}: {}", self.at, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

/// Any error raised while preparing or executing a query.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum QueryError {
    /// Syntax error.
    Parse(ParseError),
    /// Name/edge resolution error (unknown class, ambiguity, …).
    Resolve(ResolveError),
    /// Reference to a subdatabase that is not registered.
    UnknownSubdb(String),
    /// Reference to a class that is not a slot of the named subdatabase.
    UnknownSubdbClass { subdb: String, class: String },
    /// A select/where item could not be attributed to a unique class
    /// (paper §4.3: qualify the attribute with its class name).
    AmbiguousAttribute(String),
    /// The expression has a structural problem (e.g. closure over a
    /// non-cyclic expression).
    Semantic(String),
    /// An operation name is not registered.
    UnknownOperation(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Resolve(e) => write!(f, "{e}"),
            QueryError::UnknownSubdb(s) => write!(f, "unknown subdatabase `{s}`"),
            QueryError::UnknownSubdbClass { subdb, class } => {
                write!(f, "subdatabase `{subdb}` has no class `{class}`")
            }
            QueryError::AmbiguousAttribute(a) => write!(
                f,
                "attribute `{a}` is ambiguous; qualify it as Class[{a}]"
            ),
            QueryError::Semantic(m) => write!(f, "{m}"),
            QueryError::UnknownOperation(o) => write!(f, "unknown operation `{o}`"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<ResolveError> for QueryError {
    fn from(e: ResolveError) -> Self {
        QueryError::Resolve(e)
    }
}
